//! The cycle-level out-of-order core.
//!
//! Execution is *value-accurate*: operands flow through physical registers,
//! loads sample committed memory (or forward from the store queue) at issue
//! time, and stores write memory at commit. A premature load therefore
//! really returns stale data, and the active [`MemDepPolicy`] must arrange
//! for its replay before it commits — the core panics if a stale value ever
//! reaches architectural state, and the integration suite additionally
//! compares the final state checksum against the functional emulator.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use dmdc_isa::{arch_checksum, ArchReg, Inst, InstClass, Program, SparseMemory};
use dmdc_types::{AccessSize, Addr, Age, Cycle, MemSpan, SplitMix64};

use crate::audit::{AuditKind, AuditReport, Auditor};
use crate::bpred::{BranchPredictor, Btb, HistorySnapshot};
use crate::cache::MemoryHierarchy;
use crate::config::CoreConfig;
use crate::exec::{compute, extract_forwarded, load_value, store_raw};
use crate::lsq::{
    CheckOutcome, CommitInfo, CommitKind, LoadQueue, MemDepPolicy, PolicyCtx, StoreQueue,
};
use crate::multicore::CoherenceHub;
use crate::regs::{Operand, PhysReg, RegFiles, RegValue};
use crate::stats::{ReplayKind, SimProfile, SimStats};
use crate::trace::{PipelineTrace, Stage};

/// Statistical-sampling specification: how a sampled run carves the
/// dynamic instruction stream into detailed measurement windows.
///
/// A sampled run fast-forwards through a functional model, takes
/// `windows` evenly spaced checkpoints, and simulates
/// `warmup_insts + window_insts` instructions in detail from each — the
/// warmup prefix trains the out-of-order structures after the restore and
/// is discarded; only the `window_insts` suffix is measured. The spec is
/// part of [`SimOptions`], so it flows into every content-address and
/// journal key: sampled and exact results can never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Number of detailed measurement windows (0 = exact simulation).
    pub windows: u32,
    /// Measured instructions per window.
    pub window_insts: u32,
    /// Detailed-warmup instructions run (and discarded) before each
    /// window's measurement starts.
    pub warmup_insts: u32,
}

impl SampleSpec {
    /// The exact (unsampled) spec: every instruction simulated in detail.
    pub const EXACT: SampleSpec = SampleSpec {
        windows: 0,
        window_insts: 0,
        warmup_insts: 0,
    };

    /// The default sampled spec: enough windows for a stable standard
    /// error, windows long enough to amortize the detailed warmup.
    pub fn standard() -> SampleSpec {
        SampleSpec {
            windows: 24,
            window_insts: 1_500,
            warmup_insts: 1_500,
        }
    }

    /// Whether this spec asks for sampling at all.
    pub fn enabled(&self) -> bool {
        self.windows > 0
    }

    /// Detailed instructions one window costs (warmup + measurement).
    pub fn insts_per_window(&self) -> u64 {
        self.warmup_insts as u64 + self.window_insts as u64
    }
}

impl Default for SampleSpec {
    fn default() -> SampleSpec {
        SampleSpec::EXACT
    }
}

/// Run-control options orthogonal to the machine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Hard cycle limit; exceeding it returns [`SimError::CycleLimit`].
    pub max_cycles: u64,
    /// Stop cleanly after this many commits (the run reports
    /// `halted == false`). `None` runs to `halt`.
    pub max_commits: Option<u64>,
    /// External invalidations per 1000 cycles (paper §6.2.4). Zero disables
    /// coherence traffic entirely.
    pub inval_per_kcycle: f64,
    /// Seed for the invalidation address/timing stream.
    pub inval_seed: u64,
    /// Keep the most recent N pipeline-trace events (0 = tracing off).
    pub trace_capacity: usize,
    /// Record the program counter of every committed instruction, for
    /// instruction-by-instruction comparison against the emulator.
    pub collect_commit_log: bool,
    /// Fast-forward over provably idle cycles (the event-horizon loop).
    /// Results are bit-identical either way — `false` forces the plain
    /// per-cycle loop and exists for the lockstep equivalence tests.
    pub event_skipping: bool,
    /// Collect a per-stage wall-clock/activity breakdown of the run
    /// (returned in [`SimResult::profile`]).
    pub profile: bool,
    /// Run the invariant auditor (see [`crate::audit`]) alongside the
    /// simulation and return its [`AuditReport`] in
    /// [`SimResult::audit`]. Defaults to `false` — or to `true` when the
    /// crate is built with the `audit` cargo feature, which audits every
    /// run in the whole test suite. When `false`, no auditor code runs
    /// and the simulation output is byte-identical to a build without it.
    pub audit: bool,
    /// Statistical-sampling spec ([`SampleSpec::EXACT`] = simulate every
    /// instruction). The simulator itself never reads this — the sampling
    /// driver in `dmdc-core` interprets it — but it lives here so every
    /// cache and journal key separates sampled from exact cells.
    pub sampling: SampleSpec,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            max_cycles: 200_000_000,
            max_commits: None,
            inval_per_kcycle: 0.0,
            inval_seed: 1,
            trace_capacity: 0,
            collect_commit_log: false,
            event_skipping: true,
            profile: false,
            audit: cfg!(feature = "audit"),
            sampling: SampleSpec::EXACT,
        }
    }
}

/// Why a run could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle limit elapsed before the program halted.
    CycleLimit {
        /// The limit that was hit.
        max_cycles: u64,
        /// Instructions committed by then.
        committed: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit {
                max_cycles,
                committed,
            } => {
                write!(
                    f,
                    "cycle limit {max_cycles} reached after {committed} commits"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// All counters.
    pub stats: SimStats,
    /// Checksum over final architectural state; must equal the functional
    /// emulator's [`dmdc_isa::Emulator::state_checksum`] for the same
    /// program when the run halted.
    pub checksum: u64,
    /// Whether the program executed `halt` (vs. stopping at `max_commits`).
    pub halted: bool,
    /// Committed program counters, in order (empty unless
    /// [`SimOptions::collect_commit_log`] was set).
    pub commit_log: Vec<u32>,
    /// Per-stage breakdown of the run (`None` unless
    /// [`SimOptions::profile`] was set).
    pub profile: Option<SimProfile>,
    /// Invariant-auditor report (`None` unless [`SimOptions::audit`] was
    /// set).
    pub audit: Option<AuditReport>,
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: u32,
    inst: Inst,
    predicted_next: u32,

    hist: HistorySnapshot,
    ready_at: Cycle,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    age: Age,
    pc: u32,
    inst: Inst,
    class: InstClass,
    done: bool,
    srcs: [Option<Operand>; 2],
    dest: Option<(ArchReg, crate::regs::PhysReg, crate::regs::PhysReg)>,
    result: Option<RegValue>,
    predicted_next: u32,

    hist: HistorySnapshot,
    actual_next: Option<u32>,
    actual_taken: Option<bool>,
    span: Option<MemSpan>,
    load_raw: Option<u64>,
    safe_load: bool,
    forwarded: bool,
    issue_cycle: Option<Cycle>,
    misaligned: bool,
    /// A cross-core invalidation hit this in-flight load's line after it
    /// issued (multi-core runs only; never set single-core). The snooping
    /// load queue replays it at commit if its value went stale.
    xinv: bool,
}

#[derive(Debug, Clone, Copy)]
struct IqEntry {
    age: Age,
    srcs: [Option<Operand>; 2],
    ready: [bool; 2],
    sleep_until: Cycle,
}

impl IqEntry {
    fn is_ready(&self, now: Cycle) -> bool {
        self.sleep_until <= now && self.ready[0] && self.ready[1]
    }
}

/// One IQ source slot waiting on a physical register, registered at
/// dispatch and drained by [`Simulator::wake`]. Records for squashed
/// entries go stale; they are skipped lazily (ages are never reused, so a
/// stale age can never match a live IQ entry).
#[derive(Debug, Clone, Copy)]
struct Waiter {
    age: Age,
    fp_queue: bool,
    slot: u8,
}

struct UnitBudget {
    int_alu: u32,
    int_muldiv: u32,
    fp_alu: u32,
    fp_muldiv: u32,
    issue: u32,
}

/// The simulator.
///
/// # Examples
///
/// ```
/// use dmdc_isa::Assembler;
/// use dmdc_ooo::{BaselinePolicy, CoreConfig, SimOptions, Simulator};
///
/// let program = Assembler::new().assemble("li x1, 41\naddi x1, x1, 1\nhalt").unwrap();
/// let mut sim = Simulator::new(&program, CoreConfig::config2(), Box::new(BaselinePolicy::new()));
/// let result = sim.run(SimOptions::default()).unwrap();
/// assert!(result.halted);
/// assert_eq!(result.stats.committed, 3);
/// ```
pub struct Simulator<'p> {
    program: &'p Program,
    config: CoreConfig,
    policy: Box<dyn MemDepPolicy>,
    cycle: Cycle,
    next_age: u64,
    rf: RegFiles,
    rob: VecDeque<RobEntry>,
    int_iq: Vec<IqEntry>,
    fp_iq: Vec<IqEntry>,
    lq: LoadQueue,
    sq: StoreQueue,
    mem: SparseMemory,
    hier: MemoryHierarchy,
    bpred: BranchPredictor,
    btb: Btb,
    fq: VecDeque<Fetched>,
    fetch_pc: u32,
    fetch_stall_until: Cycle,
    fetch_blocked: bool,
    last_fetch_line: u64,
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    stats: SimStats,
    halted: bool,
    stopped_early: bool,
    last_commit_cycle: Cycle,
    last_committed_age: Age,
    ports_this_cycle: u32,
    rng: SplitMix64,
    footprint: Vec<Addr>,
    trace: PipelineTrace,
    commit_log: Option<Vec<u32>>,
    // Indexed wakeup: per-physical-register waiter lists (flat index, int
    // file first), a sorted list of fully ready IQ ages, and a min-heap of
    // sleeping (rejected) loads keyed by their retry deadline.
    waiters: Vec<Vec<Waiter>>,
    ready: Vec<Age>,
    sleepers: BinaryHeap<Reverse<(u64, u64)>>,
    // Reusable scratch buffers so the hot loop never allocates.
    scratch_due: Vec<u64>,
    scratch_cands: Vec<Age>,
    prof: Option<Box<SimProfile>>,
    audit: Option<Box<Auditor<'p>>>,
    // Multi-core wiring: `(core id, hub)` when this core's data accesses
    // route through a coherent system instead of the private hierarchy.
    coherence: Option<(usize, Rc<RefCell<CoherenceHub>>)>,
    // Pages that received an invalidation (injected or delivered), kept
    // only while the auditor runs: the INV-bit consistency invariant
    // checks every marked LQ entry against this set.
    seen_inval_pages: HashSet<u64>,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator for `program` under `config` with the given
    /// memory-dependence policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`CoreConfig::validate`]).
    pub fn new(
        program: &'p Program,
        config: CoreConfig,
        policy: Box<dyn MemDepPolicy>,
    ) -> Simulator<'p> {
        config.validate();
        // DMDC-style FIFO load queues lift the in-flight-load limit to the
        // ROB size (paper §6.2.1); CAM designs keep the configured LQ size.
        let lq_cap = if policy.needs_associative_lq() {
            config.lq_size as usize
        } else {
            config.rob_size as usize
        };
        let mem = program.initial_memory();
        let footprint = mem.touched_pages();
        Simulator {
            program,
            policy,
            cycle: Cycle(0),
            next_age: 1,
            rf: RegFiles::new(config.int_regs, config.fp_regs),
            rob: VecDeque::with_capacity(config.rob_size as usize),
            int_iq: Vec::with_capacity(config.int_iq_size as usize),
            fp_iq: Vec::with_capacity(config.fp_iq_size as usize),
            lq: LoadQueue::new(lq_cap),
            sq: StoreQueue::new(config.sq_size as usize),
            mem,
            hier: MemoryHierarchy::new(&config),
            bpred: BranchPredictor::new(
                config.bimodal_entries,
                config.gshare_entries,
                config.gshare_history_bits,
                config.meta_entries,
            ),
            btb: Btb::new(config.btb_entries),
            fq: VecDeque::new(),
            fetch_pc: program.entry(),
            fetch_stall_until: Cycle(0),
            fetch_blocked: false,
            last_fetch_line: u64::MAX,
            completions: BinaryHeap::new(),
            stats: SimStats::default(),
            halted: false,
            stopped_early: false,
            last_commit_cycle: Cycle(0),
            last_committed_age: Age::OLDEST,
            ports_this_cycle: 0,
            rng: SplitMix64::new(1),
            footprint,
            trace: PipelineTrace::new(0),
            commit_log: None,
            waiters: vec![Vec::new(); (config.int_regs + config.fp_regs) as usize],
            ready: Vec::new(),
            sleepers: BinaryHeap::new(),
            scratch_due: Vec::new(),
            scratch_cands: Vec::new(),
            prof: None,
            audit: None,
            coherence: None,
            seen_inval_pages: HashSet::new(),
            config,
        }
    }

    /// Runs to `halt` (or a limit from `opts`).
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if the cycle budget runs out.
    ///
    /// # Panics
    ///
    /// Panics on simulator-invariant violations: a stale load reaching
    /// commit without a replay, a misaligned committed-path access, or a
    /// 200k-cycle commit drought (deadlock).
    pub fn run(&mut self, opts: SimOptions) -> Result<SimResult, SimError> {
        self.rng = SplitMix64::new(opts.inval_seed);
        self.trace = PipelineTrace::new(opts.trace_capacity);
        self.commit_log = opts.collect_commit_log.then(Vec::new);
        self.prof = opts.profile.then(Box::default);
        self.audit = opts
            .audit
            .then(|| Box::new(Auditor::new(self.program, self.policy.name().to_string())));
        self.run_loop(&opts)?;
        Ok(self.finalize())
    }

    /// Continues a run that stopped cleanly at [`SimOptions::max_commits`],
    /// typically with a larger commit budget. Everything carries over —
    /// cycle count, statistics, pipeline state, the invalidation RNG
    /// stream — so `run(a)` + `resume(b)` commits exactly the same
    /// instruction stream as a single `run(b)`. The sampling driver uses
    /// this to split a detailed window into its discarded-warmup and
    /// measured halves.
    ///
    /// The invariant auditor (if any) was consumed by the previous
    /// [`Simulator::run`]'s result and is not re-armed.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if the cycle budget runs out.
    ///
    /// # Panics
    ///
    /// Panics if the previous run halted or errored rather than stopping
    /// at its commit budget.
    pub fn resume(&mut self, opts: SimOptions) -> Result<SimResult, SimError> {
        assert!(
            self.stopped_early && !self.halted,
            "resume requires a previous run stopped cleanly at max_commits"
        );
        self.stopped_early = false;
        self.run_loop(&opts)?;
        Ok(self.finalize())
    }

    fn run_loop(&mut self, opts: &SimOptions) -> Result<(), SimError> {
        let inval_prob = opts.inval_per_kcycle / 1000.0;
        let has_hook = self.policy.has_cycle_hook();
        while !self.halted && !self.stopped_early {
            if self.cycle.0 >= opts.max_cycles {
                return Err(SimError::CycleLimit {
                    max_cycles: opts.max_cycles,
                    committed: self.stats.committed,
                });
            }
            self.cycle.tick();
            self.ports_this_cycle = 0;
            if has_hook {
                let mut ctx = PolicyCtx {
                    cycle: self.cycle,
                    energy: &mut self.stats.energy,
                    stats: &mut self.stats.policy,
                };
                self.policy.on_cycle(&mut ctx);
            }
            let mut progress = false;
            if inval_prob > 0.0 && self.rng.chance(inval_prob) {
                self.inject_invalidation();
                progress = true;
            }
            progress |= self.step_pipeline(opts.max_commits);
            if self.halted || self.stopped_early {
                break;
            }
            self.assert_no_deadlock();
            if self.audit.is_some() {
                self.audit_structures();
            }
            if opts.event_skipping && !progress {
                self.fast_forward(opts, inval_prob, has_hook);
            }
        }
        Ok(())
    }

    fn finalize(&mut self) -> SimResult {
        self.stats.cycles = self.cycle.0;
        self.stats.l1i = self.hier.l1i.stats;
        self.stats.l1d = self.hier.l1d.stats;
        self.stats.l2 = self.hier.l2.stats;
        let checksum = arch_checksum(
            &self.rf.arch_int_values(),
            &self.rf.arch_fp_values(),
            &self.mem,
        );
        SimResult {
            stats: self.stats.clone(),
            checksum,
            halted: self.halted,
            // Cloned, not taken: a resumed run keeps appending to the log
            // and the profile it started with.
            commit_log: self.commit_log.clone().unwrap_or_default(),
            profile: self.prof.as_deref().copied(),
            audit: self.audit.take().map(|a| a.into_report()),
        }
    }

    /// Seeds a **fresh** simulator with mid-program state captured from the
    /// functional model: the next program counter, the architectural
    /// register files, the committed memory image, and functionally warmed
    /// cache/branch-predictor/BTB structures. The subsequent
    /// [`Simulator::run`] then behaves as if the machine had been
    /// executing all along — this is the restore half of the sampling
    /// engine's checkpoint machinery.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has already executed anything: the rename
    /// maps, ROB and queues must still be in their pristine reset state.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_checkpoint(
        &mut self,
        pc: u32,
        int_regs: &[u64; 32],
        fp_regs: &[f64; 32],
        mem: SparseMemory,
        hier: MemoryHierarchy,
        bpred: BranchPredictor,
        btb: Btb,
    ) {
        assert!(
            self.cycle.0 == 0 && self.rob.is_empty() && self.stats.committed == 0,
            "restore_checkpoint must precede the first run"
        );
        self.fetch_pc = pc;
        self.rf.set_arch_values(int_regs, fp_regs);
        self.footprint = mem.touched_pages();
        self.mem = mem;
        self.hier = hier;
        self.bpred = bpred;
        self.btb = btb;
    }

    /// The statistics accumulated so far (also returned by [`Simulator::run`]).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The pipeline trace recorded during [`Simulator::run`] (empty unless
    /// [`SimOptions::trace_capacity`] was nonzero).
    pub fn trace(&self) -> &PipelineTrace {
        &self.trace
    }

    fn rob_index_of(&self, age: Age) -> Option<usize> {
        self.rob.binary_search_by_key(&age, |e| e.age).ok()
    }

    fn schedule(&mut self, at: Cycle, age: Age) {
        self.completions.push(Reverse((at.0, age.0)));
    }

    // ----- the event horizon ----------------------------------------------

    /// Runs all five pipeline stages for the current cycle, in commit-first
    /// order. Returns `true` if any stage did observable work — `false`
    /// means the cycle changed nothing but the cycle counter itself (and
    /// one RNG draw, performed by the caller), which is what licenses
    /// fast-forwarding.
    fn step_pipeline(&mut self, max_commits: Option<u64>) -> bool {
        if self.prof.is_some() {
            return self.step_pipeline_profiled(max_commits);
        }
        let mut progress = self.commit(max_commits);
        if self.halted || self.stopped_early {
            return true;
        }
        progress |= self.writeback();
        progress |= self.issue();
        progress |= self.dispatch();
        progress |= self.fetch();
        progress
    }

    fn step_pipeline_profiled(&mut self, max_commits: Option<u64>) -> bool {
        self.prof.as_mut().expect("profiled path").executed_cycles += 1;
        let mut progress = self.timed(0, |s| s.commit(max_commits));
        if self.halted || self.stopped_early {
            return true;
        }
        progress |= self.timed(1, Simulator::writeback);
        progress |= self.timed(2, Simulator::issue);
        progress |= self.timed(3, Simulator::dispatch);
        progress |= self.timed(4, Simulator::fetch);
        progress
    }

    fn timed(&mut self, stage: usize, f: impl FnOnce(&mut Self) -> bool) -> bool {
        let t0 = std::time::Instant::now();
        let did = f(self);
        let p = self.prof.as_mut().expect("profiled path");
        p.stage_nanos[stage] += t0.elapsed().as_nanos() as u64;
        p.stage_active_cycles[stage] += u64::from(did);
        did
    }

    fn assert_no_deadlock(&self) {
        assert!(
            self.cycle.since(self.last_commit_cycle) < 200_000,
            "deadlock: no commit for 200k cycles (policy {}, pc {}, rob {} entries, head done={:?})",
            self.policy.name(),
            self.fetch_pc,
            self.rob.len(),
            self.rob.front().map(|e| e.done),
        );
    }

    /// The first future cycle at which a stalled pipeline can change state:
    /// the earliest of the pending writeback completions, the IQ sleeper
    /// deadlines, the fetch stall release, and the front fetch-queue entry
    /// becoming dispatch-eligible. Capped so the deadlock assertion and the
    /// cycle limit fire at exactly the same cycle as the per-cycle loop.
    /// Returns `None` when no skip of more than one cycle is possible.
    fn next_event_cycle(&self, opts: &SimOptions) -> Option<u64> {
        let now = self.cycle.0;
        let mut e = u64::MAX;
        if let Some(&Reverse((c, _))) = self.completions.peek() {
            e = e.min(c);
        }
        if let Some(&Reverse((until, _))) = self.sleepers.peek() {
            e = e.min(until);
        }
        if !self.fetch_blocked && self.fetch_stall_until.0 > now {
            e = e.min(self.fetch_stall_until.0);
        }
        if let Some(f) = self.fq.front() {
            if f.ready_at.0 > now {
                e = e.min(f.ready_at.0);
            }
        }
        if e == u64::MAX {
            // Nothing in flight anywhere: the per-cycle loop will grind to
            // the deadlock assertion; don't skip over a genuine hang.
            return None;
        }
        let e = e
            .min(self.last_commit_cycle.0.saturating_add(200_000))
            .min(opts.max_cycles.saturating_add(1));
        (e > now + 1).then_some(e)
    }

    /// Jumps from a provably idle cycle to the eve of the next event.
    ///
    /// An idle cycle mutates nothing but the cycle counter and (when
    /// coherence traffic is enabled) one Bernoulli draw, so skipping `n`
    /// such cycles only requires advancing the RNG `n` times and batching
    /// the policy's per-cycle hook. A draw that hits inside the span ends
    /// it early: that cycle injects the invalidation and executes for real,
    /// exactly as the per-cycle loop would have.
    fn fast_forward(&mut self, opts: &SimOptions, inval_prob: f64, has_hook: bool) {
        let Some(target) = self.next_event_cycle(opts) else {
            return;
        };
        let now = self.cycle.0;
        // Last cycle of the idle span (the event cycle itself must run).
        let mut end = target - 1;
        let mut inject = false;
        if inval_prob > 0.0 {
            let mut c = now + 1;
            while c <= end {
                if self.rng.chance(inval_prob) {
                    end = c;
                    inject = true;
                    break;
                }
                c += 1;
            }
        }
        let n = end - now;
        if has_hook {
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.stats.energy,
                stats: &mut self.stats.policy,
            };
            self.policy.on_idle_cycles(&mut ctx, n);
        }
        self.stats.fast_forwards += 1;
        self.stats.skipped_cycles += n - u64::from(inject);
        self.cycle = Cycle(end);
        if inject {
            // The hook and the draw for `end` already ran above; replay the
            // rest of that cycle as the per-cycle loop would.
            self.ports_this_cycle = 0;
            self.inject_invalidation();
            self.step_pipeline(opts.max_commits);
            if self.halted || self.stopped_early {
                return;
            }
            self.assert_no_deadlock();
        }
    }

    // ----- commit ---------------------------------------------------------

    /// Returns `true` if any head instruction was processed (retired,
    /// halted, stopped or replayed) this cycle.
    fn commit(&mut self, max_commits: Option<u64>) -> bool {
        let mut did = false;
        for _ in 0..self.config.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done {
                break;
            }
            let e = *head;
            match e.class {
                InstClass::Store => {
                    // Data may still be in flight even though AGEN finished.
                    let data_op = e.srcs[1].expect("store has a data operand");
                    if !self.rf.is_ready(data_op) {
                        break;
                    }
                    if self.ports_this_cycle >= self.config.dcache_ports {
                        break;
                    }
                    did = true;
                    self.ports_this_cycle += 1;
                    let span = e.span.expect("committed store has a span");
                    assert!(
                        !e.misaligned,
                        "misaligned store reached commit at pc {}",
                        e.pc
                    );
                    let raw = store_raw(e.inst, self.rf.read(data_op));
                    self.mem.write(span.addr, span.size, raw);
                    self.data_write_access(span.addr);
                    let info = CommitInfo {
                        age: e.age,
                        kind: CommitKind::Store,
                        span: Some(span),
                        safe_load: false,
                        value_correct: true,
                        issue_cycle: e.issue_cycle,
                    };
                    let outcome = self.policy_commit(&info);
                    assert_eq!(outcome, CheckOutcome::Ok, "policies must not replay stores");
                    self.audit_commit(e.age, e.pc, Some(span), Some(raw));
                    self.sq.pop_head(e.age);
                    self.retire_entry(&e);
                    self.stats.stores += 1;
                }
                InstClass::Load => {
                    did = true;
                    let span = e.span.expect("committed load has a span");
                    assert!(
                        !e.misaligned,
                        "misaligned load reached commit at pc {}",
                        e.pc
                    );
                    let raw = e.load_raw.expect("committed load has a value");
                    // All older stores have committed, so memory now holds
                    // the architecturally correct bytes: the replay oracle.
                    let expected = self.mem.read(span.addr, span.size);
                    let value_correct = expected == raw;
                    if !value_correct && e.safe_load && !e.xinv && self.audit.is_some() {
                        // Invariant 4: safe classification promised all older
                        // stores were resolved at issue, so the value was
                        // final then — staleness here breaks the promise no
                        // matter what the policy decides next.
                        self.audit_record(
                            AuditKind::StaleSafeLoad,
                            e.age,
                            e.pc,
                            Some(span),
                            format!("safe load got {raw:#x}, architectural {expected:#x}"),
                        );
                    }
                    if !value_correct && e.xinv {
                        // A cross-core invalidation marked this load after
                        // issue and its value really did go stale: the
                        // snooping load queue replays it at commit
                        // (POWER4-style), before the policy's check even
                        // runs. Not a policy bug — remote stores are
                        // invisible to local disambiguation.
                        self.stats.policy.replays.record(ReplayKind::Coherence);
                        self.replay_squash(e.age);
                        break;
                    }
                    let info = CommitInfo {
                        age: e.age,
                        kind: CommitKind::Load,
                        span: Some(span),
                        safe_load: e.safe_load,
                        value_correct,
                        issue_cycle: e.issue_cycle,
                    };
                    match self.policy_commit(&info) {
                        CheckOutcome::Replay => {
                            self.replay_squash(e.age);
                            break;
                        }
                        CheckOutcome::Ok => {
                            if !value_correct {
                                if self.audit.is_some() {
                                    // Invariant 5: count the missed replay,
                                    // then force the replay ourselves so the
                                    // run stays architecturally sound and
                                    // later misses are counted too. No loop:
                                    // the offending store has committed, so
                                    // the re-issued load reads fresh memory.
                                    self.audit_record(
                                        AuditKind::MissedReplay,
                                        e.age,
                                        e.pc,
                                        Some(span),
                                        format!(
                                            "policy committed stale load: got {raw:#x}, \
                                             architectural {expected:#x}; replay forced"
                                        ),
                                    );
                                    self.replay_squash(e.age);
                                    break;
                                }
                                panic!(
                                    "policy `{}` committed a stale load: pc {} addr {} got {:#x} expected {:#x}",
                                    self.policy.name(),
                                    e.pc,
                                    span.addr,
                                    raw,
                                    expected
                                );
                            }
                            self.audit_commit(e.age, e.pc, Some(span), Some(raw));
                            self.lq.pop_head(e.age);
                            self.retire_entry(&e);
                            self.stats.loads += 1;
                        }
                    }
                }
                InstClass::Branch => {
                    did = true;
                    if let (Inst::Branch { .. }, Some(taken)) = (e.inst, e.actual_taken) {
                        self.bpred.update(e.pc, taken, e.hist);
                        self.stats.branches += 1;
                    }
                    let info = CommitInfo {
                        age: e.age,
                        kind: CommitKind::Other,
                        span: None,
                        safe_load: false,
                        value_correct: true,
                        issue_cycle: None,
                    };
                    self.policy_commit(&info);
                    self.audit_commit(e.age, e.pc, None, None);
                    self.retire_entry(&e);
                }
                InstClass::Halt => {
                    did = true;
                    let info = CommitInfo {
                        age: e.age,
                        kind: CommitKind::Other,
                        span: None,
                        safe_load: false,
                        value_correct: true,
                        issue_cycle: None,
                    };
                    self.policy_commit(&info);
                    self.audit_commit(e.age, e.pc, None, None);
                    self.rob.pop_front();
                    self.note_commit(e.age, e.pc);
                    self.halted = true;
                    break;
                }
                _ => {
                    did = true;
                    let info = CommitInfo {
                        age: e.age,
                        kind: CommitKind::Other,
                        span: None,
                        safe_load: false,
                        value_correct: true,
                        issue_cycle: None,
                    };
                    self.policy_commit(&info);
                    self.audit_commit(e.age, e.pc, None, None);
                    self.retire_entry(&e);
                }
            }
            if let Some(limit) = max_commits {
                if self.stats.committed >= limit {
                    self.stopped_early = true;
                    break;
                }
            }
        }
        did
    }

    // ----- auditing -------------------------------------------------------

    /// Records one violation (no-op when the auditor is off).
    fn audit_record(
        &mut self,
        kind: AuditKind,
        age: Age,
        pc: u32,
        span: Option<MemSpan>,
        detail: String,
    ) {
        let cycle = self.cycle;
        if let Some(aud) = self.audit.as_deref_mut() {
            aud.record(kind, cycle, age, pc, span, detail);
        }
    }

    /// Audits one committed instruction: commit order plus emulator
    /// lockstep (no-op when the auditor is off).
    fn audit_commit(&mut self, age: Age, pc: u32, span: Option<MemSpan>, mem_raw: Option<u64>) {
        let cycle = self.cycle;
        if let Some(aud) = self.audit.as_deref_mut() {
            aud.check_commit(cycle, age, pc, span, mem_raw);
        }
    }

    /// One structural scan (audit invariants 2 and 7): a single merged
    /// pass over the ROB with the LQ/SQ iterators advanced alongside in
    /// age order, then the policy's self-audit. Called once per executed
    /// (non-skipped) cycle; skipped cycles cannot change any structure.
    fn audit_structures(&mut self) {
        let Some(mut aud) = self.audit.take() else {
            return;
        };
        aud.note_scan();
        let cycle = self.cycle;
        if self.rob.len() > self.config.rob_size as usize {
            aud.record(
                AuditKind::QueueShape,
                cycle,
                self.last_committed_age,
                0,
                None,
                format!(
                    "ROB holds {} > {} entries",
                    self.rob.len(),
                    self.config.rob_size
                ),
            );
        }
        let mut lq_it = self.lq.iter().peekable();
        let mut sq_it = self.sq.iter().peekable();
        let mut prev = self.last_committed_age;
        for e in self.rob.iter() {
            if !e.age.is_younger_than(prev) {
                aud.record(
                    AuditKind::QueueShape,
                    cycle,
                    e.age,
                    e.pc,
                    None,
                    format!("ROB not age-sorted: {} after {}", e.age.0, prev.0),
                );
            }
            prev = e.age;
            if lq_it.peek().is_some_and(|l| l.age == e.age) {
                let l = lq_it.next().expect("peeked");
                if e.class != InstClass::Load {
                    aud.record(
                        AuditKind::QueueRobSync,
                        cycle,
                        e.age,
                        e.pc,
                        l.span,
                        "LQ entry maps to a non-load ROB entry".to_string(),
                    );
                }
            }
            if sq_it.peek().is_some_and(|s| s.age == e.age) {
                let s = sq_it.next().expect("peeked");
                if e.class != InstClass::Store {
                    aud.record(
                        AuditKind::QueueRobSync,
                        cycle,
                        e.age,
                        e.pc,
                        s.span,
                        "SQ entry maps to a non-store ROB entry".to_string(),
                    );
                }
            }
        }
        // Leftover LSQ iterator entries are either out of age order (the
        // merge above skipped them) or reference ages absent from the ROB;
        // both break the LSQ ⊆ ROB, age-sorted invariant.
        for l in lq_it {
            aud.record(
                AuditKind::QueueRobSync,
                cycle,
                l.age,
                0,
                l.span,
                "LQ entry out of age order or without a ROB entry".to_string(),
            );
        }
        for s in sq_it {
            aud.record(
                AuditKind::QueueRobSync,
                cycle,
                s.age,
                0,
                s.span,
                "SQ entry out of age order or without a ROB entry".to_string(),
            );
        }
        // INV-bit consistency (coherence invariant): every marked LQ entry
        // must trace back to a real invalidation — injected or delivered by
        // the hub — on its page. Page granularity is exact here: policies
        // mark at line granularity and lines never straddle pages.
        for l in self.lq.iter() {
            if l.inv_marked
                && !l
                    .span
                    .is_some_and(|s| self.seen_inval_pages.contains(&(s.addr.0 >> 12)))
            {
                aud.record(
                    AuditKind::InvBitSync,
                    cycle,
                    l.age,
                    0,
                    l.span,
                    "LQ entry marked invalidated with no matching invalidation".to_string(),
                );
            }
        }
        if let Some(msg) = self.policy.audit_self(&self.lq) {
            aud.record(
                AuditKind::PolicyState,
                cycle,
                self.last_committed_age,
                0,
                None,
                msg,
            );
        }
        self.audit = Some(aud);
    }

    fn policy_commit(&mut self, info: &CommitInfo) -> CheckOutcome {
        let mut ctx = PolicyCtx {
            cycle: self.cycle,
            energy: &mut self.stats.energy,
            stats: &mut self.stats.policy,
        };
        self.policy.on_commit(&mut ctx, info)
    }

    /// Retires a non-replayed head entry: updates the retirement map and
    /// pops the ROB.
    fn retire_entry(&mut self, e: &RobEntry) {
        if let Some((arch, new, _prev_spec)) = e.dest {
            self.rf.retire_dest(arch, new);
        }
        let popped = self.rob.pop_front().expect("head exists");
        debug_assert_eq!(popped.age, e.age);
        self.note_commit(e.age, e.pc);
    }

    fn note_commit(&mut self, age: Age, pc: u32) {
        self.stats.committed += 1;
        self.last_commit_cycle = self.cycle;
        self.last_committed_age = age;
        self.trace.record(self.cycle, age, pc, Stage::Commit);
        if let Some(log) = &mut self.commit_log {
            log.push(pc);
        }
    }

    // ----- writeback ------------------------------------------------------

    /// Returns `true` if any completion was due this cycle (including ones
    /// whose instructions were squashed since issue).
    fn writeback(&mut self) -> bool {
        let mut due = std::mem::take(&mut self.scratch_due);
        due.clear();
        while let Some(&Reverse((c, age))) = self.completions.peek() {
            if c <= self.cycle.0 {
                self.completions.pop();
                due.push(age);
            } else {
                break;
            }
        }
        due.sort_unstable();
        let any = !due.is_empty();
        for &age in &due {
            let age = Age(age);
            let Some(idx) = self.rob_index_of(age) else {
                continue;
            }; // squashed
            let e = self.rob[idx];
            match e.class {
                InstClass::Load => {
                    let value = load_value(e.inst, e.load_raw.expect("issued load has raw bytes"));
                    if let Some((_, phys, _)) = e.dest {
                        self.rf.write(phys, value);
                        self.wake(phys);
                    }
                    self.rob[idx].done = true;
                    self.trace.record(self.cycle, age, e.pc, Stage::Writeback);
                }
                InstClass::Store => {
                    self.rob[idx].done = true;
                    self.trace.record(self.cycle, age, e.pc, Stage::Writeback);
                }
                InstClass::Branch => {
                    if let (Some((_, phys, _)), Some(RegValue::Int(link))) = (e.dest, e.result) {
                        self.rf.write(phys, RegValue::Int(link));
                        self.wake(phys);
                    }
                    self.rob[idx].done = true;
                    self.trace.record(self.cycle, age, e.pc, Stage::Writeback);
                    let actual = e.actual_next.expect("branch executed before writeback");
                    if let Inst::Jalr { .. } = e.inst {
                        self.btb.insert(e.pc, actual);
                    }
                    if actual != e.predicted_next {
                        self.handle_mispredict(idx, actual);
                        // Younger due completions now dangle; their ROB
                        // lookups will miss. Stop trusting `idx` values.
                        continue;
                    }
                }
                _ => {
                    if let (Some((_, phys, _)), Some(result)) = (e.dest, e.result) {
                        self.rf.write(phys, result);
                        self.wake(phys);
                    }
                    self.rob[idx].done = true;
                    self.trace.record(self.cycle, age, e.pc, Stage::Writeback);
                }
            }
        }
        self.scratch_due = due;
        any
    }

    fn handle_mispredict(&mut self, branch_idx: usize, actual_next: u32) {
        let b = self.rob[branch_idx];
        self.stats.mispredicts += 1;
        self.squash_from(Age(b.age.0 + 1));
        self.bpred.restore(b.hist);
        if let (Inst::Branch { .. }, Some(taken)) = (b.inst, b.actual_taken) {
            self.bpred.speculate(b.pc, taken);
        }
        self.redirect_fetch(actual_next, self.config.mispredict_penalty);
    }

    /// Flat waiter-list index of a physical register (int file first).
    fn flat_reg(&self, p: PhysReg) -> usize {
        p.idx as usize
            + if p.fp {
                self.config.int_regs as usize
            } else {
                0
            }
    }

    /// Wakes every IQ source slot registered as waiting on `phys`. Stale
    /// records (squashed consumers) are dropped; ages are never reused, so
    /// a stale age cannot alias a live entry. Entries whose last source
    /// arrives join the ready list — unless they are sleeping, in which
    /// case the sleeper drain in [`Simulator::issue`] picks them up.
    fn wake(&mut self, phys: PhysReg) {
        let flat = self.flat_reg(phys);
        let mut list = std::mem::take(&mut self.waiters[flat]);
        for w in &list {
            let woke = {
                let q = if w.fp_queue {
                    &mut self.fp_iq
                } else {
                    &mut self.int_iq
                };
                match q.iter_mut().find(|e| e.age == w.age) {
                    Some(entry) => {
                        debug_assert_eq!(entry.srcs[w.slot as usize], Some(Operand::Phys(phys)));
                        entry.ready[w.slot as usize] = true;
                        entry.ready[0] && entry.ready[1] && entry.sleep_until <= self.cycle
                    }
                    None => false,
                }
            };
            if woke {
                self.insert_ready(w.age);
            }
        }
        list.clear();
        self.waiters[flat] = list;
    }

    /// Adds `age` to the sorted ready list (idempotent).
    fn insert_ready(&mut self, age: Age) {
        if let Err(pos) = self.ready.binary_search(&age) {
            self.ready.insert(pos, age);
        }
    }

    fn remove_ready(&mut self, age: Age) {
        if let Ok(pos) = self.ready.binary_search(&age) {
            self.ready.remove(pos);
        }
    }

    // ----- issue ----------------------------------------------------------

    /// Returns `true` if any issue candidate existed this cycle (even if
    /// structural hazards prevented it from issuing).
    fn issue(&mut self) -> bool {
        let now = self.cycle;
        // Wake sleeping (rejected) loads whose retry deadline arrived.
        // Entries squashed while dozing leave dangling heap records; the
        // IQ membership check drops them.
        while let Some(&Reverse((until, age))) = self.sleepers.peek() {
            if until > now.0 {
                break;
            }
            self.sleepers.pop();
            let age = Age(age);
            let eligible = self
                .int_iq
                .iter()
                .chain(self.fp_iq.iter())
                .any(|e| e.age == age && e.is_ready(now));
            if eligible {
                self.insert_ready(age);
            }
        }
        if self.ready.is_empty() {
            return false;
        }
        // Snapshot the (age-sorted) ready list: the loop below mutates it
        // through remove_iq/sleep_iq as candidates issue.
        let mut cands = std::mem::take(&mut self.scratch_cands);
        cands.clear();
        cands.extend_from_slice(&self.ready);

        let mut budget = UnitBudget {
            int_alu: self.config.int_alu_units,
            int_muldiv: self.config.int_muldiv_units,
            fp_alu: self.config.fp_alu_units,
            fp_muldiv: self.config.fp_muldiv_units,
            issue: self.config.issue_width,
        };

        for &age in &cands {
            if budget.issue == 0 {
                break;
            }
            // A squash earlier in this loop may have removed the entry.
            let Some(rob_idx) = self.rob_index_of(age) else {
                continue;
            };
            if !self.iq_contains(age) {
                continue;
            }
            let class = self.rob[rob_idx].class;
            let unit = match class {
                InstClass::IntAlu | InstClass::Branch | InstClass::Load | InstClass::Store => {
                    &mut budget.int_alu
                }
                InstClass::IntMulDiv => &mut budget.int_muldiv,
                InstClass::FpAlu => &mut budget.fp_alu,
                InstClass::FpMulDiv => &mut budget.fp_muldiv,
                InstClass::Halt | InstClass::Nop => unreachable!("never enter the IQ"),
            };
            if *unit == 0 {
                continue;
            }
            if class == InstClass::Load && self.ports_this_cycle >= self.config.dcache_ports {
                continue;
            }
            *unit -= 1;
            budget.issue -= 1;

            let squashed_something = match class {
                InstClass::Load => self.issue_load(age, rob_idx),
                InstClass::Store => self.issue_store(age, rob_idx),
                _ => {
                    self.issue_compute(age, rob_idx);
                    false
                }
            };
            if squashed_something {
                // The candidate list is stale after any squash.
                break;
            }
        }
        self.scratch_cands = cands;
        true
    }

    fn iq_contains(&self, age: Age) -> bool {
        self.int_iq
            .iter()
            .chain(self.fp_iq.iter())
            .any(|e| e.age == age)
    }

    fn remove_iq(&mut self, age: Age) {
        if let Some(pos) = self.int_iq.iter().position(|e| e.age == age) {
            self.int_iq.swap_remove(pos);
        } else if let Some(pos) = self.fp_iq.iter().position(|e| e.age == age) {
            self.fp_iq.swap_remove(pos);
        } else {
            panic!("issuing an instruction absent from both IQs");
        }
        self.remove_ready(age);
    }

    fn sleep_iq(&mut self, age: Age, until: Cycle) {
        let entry = self
            .int_iq
            .iter_mut()
            .chain(self.fp_iq.iter_mut())
            .find(|e| e.age == age)
            .expect("sleeping an instruction absent from the IQs");
        entry.sleep_until = until;
        self.remove_ready(age);
        self.sleepers.push(Reverse((until.0, age.0)));
    }

    /// Reads up to two renamed sources into a stack buffer; returns the
    /// buffer and the populated length.
    fn read_sources(&self, rob_idx: usize) -> ([RegValue; 2], usize) {
        let e = &self.rob[rob_idx];
        let mut vals = [RegValue::Int(0); 2];
        let mut n = 0;
        for &op in e.srcs.iter().flatten() {
            vals[n] = self.rf.read(op);
            n += 1;
        }
        (vals, n)
    }

    fn issue_compute(&mut self, age: Age, rob_idx: usize) {
        let e = self.rob[rob_idx];
        let (srcs, n) = self.read_sources(rob_idx);
        let out = compute(e.inst, e.pc, &srcs[..n]);
        let entry = &mut self.rob[rob_idx];
        entry.result = out.result;
        entry.actual_next = out.next_pc;
        entry.actual_taken = out.taken;
        entry.issue_cycle = Some(self.cycle);
        let latency = self.latency_of(e.inst, e.class);
        self.remove_iq(age);
        self.schedule(self.cycle.plus(latency), age);
        self.trace.record(self.cycle, age, e.pc, Stage::Issue);
    }

    fn latency_of(&self, inst: Inst, class: InstClass) -> u64 {
        use dmdc_isa::AluOp;
        match class {
            InstClass::IntAlu | InstClass::Branch => self.config.int_alu_latency,
            InstClass::IntMulDiv => match inst {
                Inst::Alu { op: AluOp::Mul, .. } | Inst::AluImm { op: AluOp::Mul, .. } => {
                    self.config.int_mul_latency
                }
                _ => self.config.int_div_latency,
            },
            InstClass::FpAlu => self.config.fp_alu_latency,
            InstClass::FpMulDiv => match inst {
                Inst::Fpu {
                    op: dmdc_isa::FpuOp::Fmul,
                    ..
                } => self.config.fp_mul_latency,
                _ => self.config.fp_div_latency,
            },
            InstClass::Store => 1,
            InstClass::Load | InstClass::Halt | InstClass::Nop => {
                unreachable!("latency handled elsewhere")
            }
        }
    }

    /// Issues a load. Returns `true` if a squash happened (coherence replay).
    fn issue_load(&mut self, age: Age, rob_idx: usize) -> bool {
        let e = self.rob[rob_idx];
        let base = self.read_sources(rob_idx).0[0];
        let size = e.inst.mem_size().expect("load has a size");
        let out = compute(e.inst, e.pc, &[base]);
        let raw_ea = out.ea.expect("load computes an address");
        let (ea, misaligned) = force_align(raw_ea, size);
        let span = MemSpan::new(ea, size);

        // Paper §3 "filtering for stores": a load older than the oldest
        // in-flight store has nothing to forward from or wait on, so with
        // the oldest-store-age register enabled its SQ search is skipped.
        let sq_filterable =
            self.sq.iter().next().map(|s| s.age.is_younger_than(age)) != Some(false);
        if sq_filterable {
            self.stats.sq_filterable_loads += 1;
        }
        if !(sq_filterable && self.config.sq_age_filter) {
            // Conventional forwarding CAM: searched by every other load.
            self.stats.energy.sq_cam_searches += 1;
        }
        let safe = self.sq.all_older_resolved(age);

        enum Path {
            Forward { raw: u64, latency: u64 },
            Memory,
            Reject,
        }
        let path = match self.sq.youngest_older_overlap(age, span) {
            Some(st) => {
                let st_span = st.span.expect("overlap implies resolved");
                if st_span.contains(span) {
                    let st_idx = self
                        .rob_index_of(st.age)
                        .expect("in-flight store is in the ROB");
                    let st_entry = self.rob[st_idx];
                    let data_op = st_entry.srcs[1].expect("store has a data operand");
                    if self.rf.is_ready(data_op) {
                        let sraw = store_raw(st_entry.inst, self.rf.read(data_op));
                        let raw = extract_forwarded(sraw, span.addr.0 - st_span.addr.0, span.size);
                        Path::Forward {
                            raw,
                            latency: self.config.forward_latency,
                        }
                    } else {
                        Path::Reject
                    }
                } else {
                    Path::Reject
                }
            }
            None => Path::Memory,
        };

        match path {
            Path::Reject => {
                // Store queue rejection \[22\]: retry later.
                self.stats.load_rejections += 1;
                self.sleep_iq(age, self.cycle.plus(self.config.reject_retry_delay));
                self.trace.record(self.cycle, age, e.pc, Stage::Reject);
                false
            }
            Path::Forward { raw, latency } => {
                self.finish_load_issue(age, rob_idx, span, raw, latency, true, safe, misaligned)
            }
            Path::Memory => {
                self.ports_this_cycle += 1;
                let latency = self.data_read_access(ea);
                let raw = self.mem.read(ea, size);
                self.finish_load_issue(age, rob_idx, span, raw, latency, false, safe, misaligned)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_load_issue(
        &mut self,
        age: Age,
        rob_idx: usize,
        span: MemSpan,
        raw: u64,
        latency: u64,
        forwarded: bool,
        safe: bool,
        misaligned: bool,
    ) -> bool {
        {
            let entry = &mut self.rob[rob_idx];
            entry.span = Some(span);
            entry.load_raw = Some(raw);
            entry.safe_load = safe;
            entry.forwarded = forwarded;
            entry.issue_cycle = Some(self.cycle);
            entry.misaligned = misaligned;
        }
        {
            let lqe = self.lq.entry_mut(age).expect("load has an LQ entry");
            lqe.span = Some(span);
            lqe.issued = true;
            lqe.safe = safe;
            lqe.issue_cycle = Some(self.cycle);
        }
        self.remove_iq(age);
        self.schedule(self.cycle.plus(latency), age);
        self.trace
            .record(self.cycle, age, self.rob[rob_idx].pc, Stage::Issue);

        let replay = {
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.stats.energy,
                stats: &mut self.stats.policy,
            };
            self.policy
                .on_load_issue(&mut ctx, age, span, safe, &mut self.lq)
        };
        if let Some(target) = replay {
            self.replay_squash(target);
            true
        } else {
            false
        }
    }

    /// Issues (address-generates) a store. Returns `true` on a squash.
    fn issue_store(&mut self, age: Age, rob_idx: usize) -> bool {
        let e = self.rob[rob_idx];
        let size = e.inst.mem_size().expect("store has a size");
        // Only the base register gates AGEN; the data operand is read later
        // by forwarding (if ready) and at commit. `compute` only touches
        // srcs[0] for stores, so a placeholder stands in for the data slot.
        let base = self.rf.read(e.srcs[0].expect("store has a base operand"));
        let out = compute(e.inst, e.pc, &[base, RegValue::Int(0)]);
        let (ea, misaligned) = force_align(out.ea.expect("store computes an address"), size);
        let span = MemSpan::new(ea, size);

        {
            let entry = &mut self.rob[rob_idx];
            entry.span = Some(span);
            entry.issue_cycle = Some(self.cycle);
            entry.misaligned = misaligned;
        }
        self.sq.entry_mut(age).expect("store has an SQ entry").span = Some(span);

        let resolution = {
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.stats.energy,
                stats: &mut self.stats.policy,
            };
            self.policy.on_store_resolve(&mut ctx, age, span, &self.lq)
        };
        self.sq.entry_mut(age).expect("store has an SQ entry").safe = resolution.safe;
        if resolution.safe && self.audit.is_some() {
            // Invariant 3: *safe* promises no younger issued overlapping
            // load exists, wrong-path ones included (they update YLA too).
            if let Some(young) = crate::baseline::search_lq_for_premature_loads(&self.lq, age, span)
            {
                self.audit_record(
                    AuditKind::SafeStoreYoungerLoad,
                    age,
                    e.pc,
                    Some(span),
                    format!(
                        "store declared safe over younger issued load age {}",
                        young.0
                    ),
                );
            }
        }
        self.remove_iq(age);
        self.schedule(self.cycle.plus(1), age);
        self.trace.record(self.cycle, age, e.pc, Stage::Issue);

        if let Some(target) = resolution.replay_from {
            self.replay_squash(target);
            true
        } else {
            false
        }
    }

    // ----- squash machinery ------------------------------------------------

    /// Squashes at `load_age` (inclusive) and refetches from its PC: the
    /// dependence-replay mechanism (POWER4-style group replay).
    fn replay_squash(&mut self, load_age: Age) {
        let idx = self
            .rob_index_of(load_age)
            .expect("replay target must be in flight");
        let pc = self.rob[idx].pc;
        let hist = self.rob[idx].hist;
        self.trace.record(self.cycle, load_age, pc, Stage::Replay);
        self.squash_from(load_age);
        self.bpred.restore(hist);
        self.redirect_fetch(pc, self.config.mispredict_penalty);
        self.stats.replay_squashes += 1;
    }

    /// Removes every instruction with `age >= first` from the pipeline and
    /// rebuilds the speculative rename map.
    fn squash_from(&mut self, first: Age) {
        while let Some(back) = self.rob.back() {
            if back.age < first {
                break;
            }
            let e = self.rob.pop_back().expect("back exists");
            self.stats.squashed += 1;
            self.trace.record(self.cycle, e.age, e.pc, Stage::Squash);
            if let Some((_, new, _)) = e.dest {
                self.rf.free(new);
            }
        }
        self.int_iq.retain(|q| q.age < first);
        self.fp_iq.retain(|q| q.age < first);
        // The ready list is age-sorted: drop the squashed tail. Waiter and
        // sleeper records for squashed entries are dropped lazily (their
        // ages no longer match any IQ entry, and ages are never reused).
        let cut = self.ready.partition_point(|&a| a < first);
        self.ready.truncate(cut);
        self.lq.squash(first);
        self.sq.squash(first);
        self.rf.reset_spec_to_retire();
        for i in 0..self.rob.len() {
            if let Some((arch, new, _)) = self.rob[i].dest {
                self.rf.reapply_spec(arch, new);
            }
        }
        let survivor = self
            .rob
            .back()
            .map(|e| e.age)
            .unwrap_or(self.last_committed_age);
        let mut ctx = PolicyCtx {
            cycle: self.cycle,
            energy: &mut self.stats.energy,
            stats: &mut self.stats.policy,
        };
        self.policy.on_squash(&mut ctx, survivor);
    }

    fn redirect_fetch(&mut self, pc: u32, penalty: u64) {
        self.fq.clear();
        self.fetch_pc = pc;
        self.fetch_blocked = false;
        self.fetch_stall_until = self.cycle.plus(penalty);
        self.last_fetch_line = u64::MAX;
    }

    // ----- dispatch ---------------------------------------------------------

    /// Returns `true` if at least one instruction dispatched this cycle.
    fn dispatch(&mut self) -> bool {
        let mut did = false;
        for _ in 0..self.config.dispatch_width {
            let Some(f) = self.fq.front().copied() else {
                break;
            };
            if f.ready_at > self.cycle {
                break;
            }
            if self.rob.len() >= self.config.rob_size as usize {
                break;
            }
            let class = f.inst.class();
            let needs_iq = !matches!(class, InstClass::Halt | InstClass::Nop);
            if needs_iq {
                let q = if class.is_fp_queue() {
                    &self.fp_iq
                } else {
                    &self.int_iq
                };
                let cap = if class.is_fp_queue() {
                    self.config.fp_iq_size
                } else {
                    self.config.int_iq_size
                };
                if q.len() >= cap as usize {
                    break;
                }
            }
            if let Some(arch) = f.inst.dest() {
                let free = match arch {
                    ArchReg::Int(_) => self.rf.int_free_count(),
                    ArchReg::Fp(_) => self.rf.fp_free_count(),
                };
                if free == 0 {
                    break;
                }
            }
            if class == InstClass::Load && self.lq.is_full() {
                break;
            }
            if class == InstClass::Store && self.sq.is_full() {
                break;
            }

            self.fq.pop_front();
            did = true;
            let age = Age(self.next_age);
            self.next_age += 1;

            let mut srcs: [Option<Operand>; 2] = [None, None];
            for (i, arch) in f.inst.sources().iter().enumerate() {
                srcs[i] = Some(self.rf.rename_source(arch));
            }
            let dest = f.inst.dest().map(|arch| {
                let (new, prev) = self
                    .rf
                    .allocate_dest(arch)
                    .expect("free count checked above");
                (arch, new, prev)
            });

            self.rob.push_back(RobEntry {
                age,
                pc: f.pc,
                inst: f.inst,
                class,
                done: !needs_iq,
                srcs,
                dest,
                result: None,
                predicted_next: f.predicted_next,
                hist: f.hist,
                actual_next: None,
                actual_taken: None,
                span: None,
                load_raw: None,
                safe_load: false,
                forwarded: false,
                issue_cycle: None,
                misaligned: false,
                xinv: false,
            });

            if class == InstClass::Load {
                self.lq.allocate(age);
                self.stats.energy.lq_writes += 1;
            }
            if class == InstClass::Store {
                self.sq.allocate(age);
                self.stats.energy.sq_writes += 1;
            }
            self.trace.record(self.cycle, age, f.pc, Stage::Dispatch);
            if needs_iq {
                // Stores issue (address-generate) as soon as the *base*
                // register is ready; the data operand is handled separately
                // by forwarding and commit (paper §2 footnote: a store is
                // resolved when its address is ready).
                let iq_srcs = if class == InstClass::Store {
                    [srcs[0], None]
                } else {
                    srcs
                };
                let ready = [
                    iq_srcs[0].map(|op| self.rf.is_ready(op)).unwrap_or(true),
                    iq_srcs[1].map(|op| self.rf.is_ready(op)).unwrap_or(true),
                ];
                let entry = IqEntry {
                    age,
                    srcs: iq_srcs,
                    ready,
                    sleep_until: Cycle(0),
                };
                let fp_queue = class.is_fp_queue();
                if fp_queue {
                    self.fp_iq.push(entry);
                } else {
                    self.int_iq.push(entry);
                }
                if ready[0] && ready[1] {
                    self.insert_ready(age);
                } else {
                    // Register each pending slot with its producer; a
                    // not-yet-ready operand is always a physical register.
                    for (slot, (src, rdy)) in iq_srcs.iter().zip(ready).enumerate() {
                        if let (Some(Operand::Phys(p)), false) = (src, rdy) {
                            let flat = self.flat_reg(*p);
                            self.waiters[flat].push(Waiter {
                                age,
                                fp_queue,
                                slot: slot as u8,
                            });
                        }
                    }
                }
            }
        }
        did
    }

    // ----- fetch ------------------------------------------------------------

    /// Returns `true` if fetch did observable work this cycle (an I-cache
    /// access or an instruction pushed). A wild PC or a full fetch queue is
    /// not progress: only a squash or dispatch can unblock those.
    fn fetch(&mut self) -> bool {
        if self.fetch_blocked || self.cycle < self.fetch_stall_until {
            return false;
        }
        let mut did = false;
        let cap = 4 * self.config.fetch_width as usize;
        let mut budget = self.config.fetch_width;
        while budget > 0 && self.fq.len() < cap {
            let Some(inst) = self.program.fetch(self.fetch_pc) else {
                // Wild target (wrong-path jalr): stall until a squash redirects.
                break;
            };
            let pc = self.fetch_pc;
            let text = Program::text_addr(pc);
            let line = text.0 >> self.config.l1i.line_bytes.trailing_zeros();
            if line != self.last_fetch_line {
                did = true;
                let latency = self.hier.inst_access(text);
                self.last_fetch_line = line;
                if latency > self.config.l1i.latency {
                    // I-cache miss: stall; the line is resident on retry.
                    self.fetch_stall_until = self.cycle.plus(latency);
                    break;
                }
            }

            let (predicted_next, hist) = match inst {
                Inst::Branch { target, .. } => {
                    let (taken, snap) = self.bpred.predict(pc);
                    self.bpred.speculate(pc, taken);
                    (if taken { target } else { pc + 1 }, snap)
                }
                Inst::Jal { target, .. } => (target, self.bpred.snapshot()),
                Inst::Jalr { .. } => {
                    let target = self.btb.lookup(pc).unwrap_or(pc + 1);
                    (target, self.bpred.snapshot())
                }
                _ => (pc + 1, self.bpred.snapshot()),
            };

            self.fq.push_back(Fetched {
                pc,
                inst,
                predicted_next,
                hist,
                ready_at: self.cycle.plus(self.config.frontend_latency),
            });
            self.stats.fetched += 1;
            did = true;
            self.fetch_pc = predicted_next;
            budget -= 1;
            if inst == Inst::Halt {
                self.fetch_blocked = true;
                break;
            }
            if inst.is_control() && predicted_next != pc + 1 {
                // One taken control transfer per fetch cycle.
                break;
            }
        }
        did
    }

    // ----- coherence ---------------------------------------------------------

    fn inject_invalidation(&mut self) {
        if self.footprint.is_empty() {
            return;
        }
        let line_bytes = self.config.l2.line_bytes;
        let page = self.footprint[self.rng.next_below(self.footprint.len() as u64) as usize];
        let lines_per_page = 4096 / line_bytes;
        let line_addr = Addr(page.0 + self.rng.next_below(lines_per_page) * line_bytes);
        if self.audit.is_some() {
            self.seen_inval_pages.insert(line_addr.0 >> 12);
        }
        let replay = {
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.stats.energy,
                stats: &mut self.stats.policy,
            };
            self.policy
                .on_invalidation(&mut ctx, line_addr, line_bytes, &mut self.lq)
        };
        if let Some(target) = replay {
            self.replay_squash(target);
        }
    }

    /// A data read on the timing path: routed through the coherence hub in
    /// multi-core runs, the private hierarchy otherwise.
    fn data_read_access(&mut self, addr: Addr) -> u64 {
        match &self.coherence {
            Some((core, hub)) => hub.borrow_mut().read(*core, addr),
            None => self.hier.data_access(addr),
        }
    }

    /// A data write (store commit): same routing as [`Self::data_read_access`].
    fn data_write_access(&mut self, addr: Addr) -> u64 {
        match &self.coherence {
            Some((core, hub)) => hub.borrow_mut().write(*core, addr),
            None => self.hier.data_access(addr),
        }
    }

    // ----- multi-core driver hooks ------------------------------------------
    //
    // The round-robin driver in `multicore.rs` owns the shared memory and
    // the hub; these pub(crate) hooks let it run the single-core machinery
    // one cycle at a time with the shared image swapped in.

    /// Routes this core's data accesses through a coherence hub as `core`.
    pub(crate) fn set_coherence(&mut self, core: usize, hub: Rc<RefCell<CoherenceHub>>) {
        self.coherence = Some((core, hub));
    }

    /// The multi-core counterpart of [`Simulator::run`]'s preamble: arms
    /// tracing/profiling/auditing from `opts` and *empties the private
    /// memory image* — the driver swaps the shared image in around each
    /// step. Emulator-lockstep auditing is disabled (the per-core emulator
    /// cannot see remote stores); all structural and policy invariants
    /// still run.
    pub(crate) fn mc_prepare(&mut self, opts: &SimOptions) {
        self.rng = SplitMix64::new(opts.inval_seed);
        self.trace = PipelineTrace::new(opts.trace_capacity);
        self.commit_log = opts.collect_commit_log.then(Vec::new);
        self.prof = opts.profile.then(Box::default);
        self.audit = opts.audit.then(|| {
            let mut a = Auditor::new(self.program, self.policy.name().to_string());
            a.disable_lockstep();
            Box::new(a)
        });
        self.mem = SparseMemory::new();
    }

    /// Swaps this core's memory image with `mem` (O(1)); the driver brackets
    /// every step and the finalize with a swap-in/swap-out pair.
    pub(crate) fn swap_mem(&mut self, mem: &mut SparseMemory) {
        std::mem::swap(&mut self.mem, mem);
    }

    /// Runs one cycle of the pipeline — the body of [`Simulator::run_loop`]
    /// without Bernoulli injection or event skipping (cores must advance
    /// strictly one cycle per driver cycle to keep the interleaving
    /// deterministic).
    pub(crate) fn mc_step_cycle(&mut self, opts: &SimOptions) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        if self.cycle.0 >= opts.max_cycles {
            return Err(SimError::CycleLimit {
                max_cycles: opts.max_cycles,
                committed: self.stats.committed,
            });
        }
        self.cycle.tick();
        self.ports_this_cycle = 0;
        if self.policy.has_cycle_hook() {
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.stats.energy,
                stats: &mut self.stats.policy,
            };
            self.policy.on_cycle(&mut ctx);
        }
        self.step_pipeline(opts.max_commits);
        if self.halted || self.stopped_early {
            return Ok(());
        }
        self.assert_no_deadlock();
        if self.audit.is_some() {
            self.audit_structures();
        }
        Ok(())
    }

    /// Delivers one cross-core invalidation: marks every in-flight issued
    /// load to the line (`xinv`, the commit-time safety net), then hands the
    /// event to the policy exactly as the Bernoulli injector does. Must be
    /// called with the shared memory swapped in.
    pub(crate) fn deliver_invalidation(&mut self, line_addr: Addr, line_bytes: u64) {
        if self.audit.is_some() {
            self.seen_inval_pages.insert(line_addr.0 >> 12);
        }
        let line = line_addr.cache_line(line_bytes);
        for e in self.rob.iter_mut() {
            if e.class == InstClass::Load
                && e.load_raw.is_some()
                && e.span
                    .is_some_and(|s| s.addr.cache_line(line_bytes) == line)
            {
                e.xinv = true;
            }
        }
        let replay = {
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.stats.energy,
                stats: &mut self.stats.policy,
            };
            self.policy
                .on_invalidation(&mut ctx, line_addr, line_bytes, &mut self.lq)
        };
        if let Some(target) = replay {
            self.replay_squash(target);
        }
    }

    /// Whether this core has committed `halt`.
    pub(crate) fn mc_halted(&self) -> bool {
        self.halted
    }

    /// Final architectural integer registers (litmus observers).
    pub(crate) fn arch_int_regs(&self) -> [u64; 32] {
        self.rf.arch_int_values()
    }

    /// Finalizes a multi-core run (call with the shared memory swapped in
    /// so the checksum covers it).
    pub(crate) fn mc_finalize(&mut self) -> SimResult {
        self.finalize()
    }
}

/// Aligns a (possibly wrong-path garbage) effective address down to its
/// natural alignment. Returns the aligned address and whether alignment was
/// forced — committed-path accesses must never be misaligned, which the
/// commit stage asserts.
fn force_align(ea: Addr, size: AccessSize) -> (Addr, bool) {
    let aligned = ea.align_down(size.bytes());
    (aligned, aligned != ea)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselinePolicy;
    use dmdc_isa::{Assembler, Emulator};

    fn run_program(src: &str) -> (SimResult, u64) {
        let program = Assembler::new().assemble(src).expect("assembles");
        let mut emu = Emulator::new(&program);
        emu.run(10_000_000).expect("emulator halts");
        let mut sim = Simulator::new(
            &program,
            CoreConfig::config2(),
            Box::new(BaselinePolicy::new()),
        );
        let result = sim.run(SimOptions::default()).expect("sim halts");
        (result, emu.state_checksum())
    }

    #[test]
    fn straight_line_arithmetic_matches_emulator() {
        let (r, golden) = run_program("li x1, 7\nmuli x2, x1, 6\naddi x3, x2, -2\nhalt");
        assert!(r.halted);
        assert_eq!(r.checksum, golden);
        assert_eq!(r.stats.committed, 4); // li expands to one addi here
    }

    #[test]
    fn loops_and_branches_match_emulator() {
        let (r, golden) = run_program(
            "        li   x1, 100
                     li   x2, 0
             loop:   add  x2, x2, x1
                     addi x1, x1, -1
                     bne  x1, x0, loop
                     halt",
        );
        assert_eq!(r.checksum, golden);
        assert!(r.stats.branches >= 100);
        assert!(
            r.stats.ipc() > 0.5,
            "a simple loop should pipeline, ipc={}",
            r.stats.ipc()
        );
    }

    #[test]
    fn store_load_forwarding_roundtrip() {
        let (r, golden) = run_program(
            "        li   x1, 0x1000
                     li   x2, 0x77
                     sw   x2, 0(x1)
                     lw   x3, 0(x1)
                     add  x4, x3, x3
                     halt",
        );
        assert_eq!(r.checksum, golden);
    }

    #[test]
    fn memory_dependences_with_pointer_chase() {
        // Build a linked list in memory, then walk it: many load-store
        // dependences with varied addresses.
        let (r, golden) = run_program(
            "        li   x1, 0x2000      # node i at 0x2000 + 16*i
                     li   x2, 0           # i
                     li   x3, 10
             build:  muli x4, x2, 16
                     add  x4, x4, x1      # &node[i]
                     addi x5, x2, 1
                     muli x5, x5, 16
                     add  x5, x5, x1      # &node[i+1]
                     sd   x5, 0(x4)       # node.next
                     sd   x2, 8(x4)       # node.value = i
                     addi x2, x2, 1
                     blt  x2, x3, build
                     # terminate list
                     muli x4, x3, 16
                     add  x4, x4, x1
                     sd   x0, 0(x4)
                     sd   x0, 8(x4)
                     # walk
                     mv   x6, x1
                     li   x7, 0
             walk:   ld   x8, 8(x6)
                     add  x7, x7, x8
                     ld   x6, 0(x6)
                     bne  x6, x0, walk
                     halt",
        );
        assert_eq!(r.checksum, golden);
        assert!(r.stats.loads > 15);
        assert!(r.stats.stores > 15);
    }

    #[test]
    fn fp_kernel_matches_emulator() {
        let (r, golden) = run_program(
            "        li   x1, 0x3000
                     li   x2, 16
                     li   x3, 0
             init:   muli x4, x3, 8
                     add  x4, x4, x1
                     i2f  f1, x3
                     fsd  f1, 0(x4)
                     addi x3, x3, 1
                     blt  x3, x2, init
                     li   x3, 0
                     li   x5, 0
                     i2f  f2, x5
             sum:    muli x4, x3, 8
                     add  x4, x4, x1
                     fld  f3, 0(x4)
                     fadd f2, f2, f3
                     addi x3, x3, 1
                     blt  x3, x2, sum
                     f2i  x6, f2
                     halt",
        );
        assert_eq!(r.checksum, golden);
    }

    #[test]
    fn premature_load_is_caught_and_replayed() {
        // A store whose address depends on a slow divide, followed
        // immediately by a load of the same address: the load will issue
        // before the store resolves, read stale memory, and must be
        // replayed when the store's AGEN completes.
        let (r, golden) = run_program(
            "        li   x1, 0x4000
                     li   x2, 1000
                     li   x3, 10
                     li   x9, 0x11
                     sw   x9, 0(x1)       # memory initially 0x11
                     div  x4, x2, x3      # slow: 100
                     muli x4, x4, 0       # x4 = 0
                     add  x5, x1, x4      # = 0x4000, but late
                     li   x6, 0x22
                     sw   x6, 0(x5)       # store resolves late
                     lw   x7, 0(x1)       # premature load: sees 0x11, must replay to 0x22
                     add  x8, x7, x7
                     halt",
        );
        assert_eq!(r.checksum, golden, "replay must repair the stale load");
        assert!(r.stats.replay_squashes >= 1, "expected at least one replay");
        assert!(r.stats.policy.replays.true_violation >= 1);
    }

    #[test]
    fn load_rejection_on_partial_overlap() {
        // An 8-byte store followed by a 4-byte load contained in it is
        // forwarded; a 4-byte store followed by an 8-byte load overlapping
        // it is a partial match and must reject + retry.
        let (r, golden) = run_program(
            "        li   x1, 0x5000
                     li   x2, -1
                     sd   x2, 0(x1)
                     sw   x0, 0(x1)
                     ld   x3, 0(x1)       # partial: waits for the sw to commit
                     halt",
        );
        assert_eq!(r.checksum, golden);
        assert!(
            r.stats.load_rejections >= 1,
            "partial overlap should reject"
        );
    }

    #[test]
    fn wrong_path_work_is_squashed() {
        // A data-dependent unpredictable branch pattern drives wrong-path
        // fetch; results must still match the emulator.
        let (r, golden) = run_program(
            "        li   x1, 0x6000
                     li   x2, 0          # i
                     li   x3, 200
                     li   x6, 0
             loop:   andi x4, x2, 5
                     andi x5, x2, 3
                     bne  x4, x5, skip   # data-dependent, hard to predict
                     addi x6, x6, 7
                     sw   x6, 0(x1)
             skip:   lw   x7, 0(x1)
                     add  x6, x6, x7
                     addi x2, x2, 1
                     blt  x2, x3, loop
                     halt",
        );
        assert_eq!(r.checksum, golden);
        assert!(
            r.stats.mispredicts > 0,
            "pattern should mispredict sometimes"
        );
        assert!(r.stats.squashed > 0);
        assert!(
            r.stats.fetched > r.stats.committed,
            "wrong-path fetch happened"
        );
    }

    #[test]
    fn jalr_returns_via_btb() {
        let (r, golden) = run_program(
            "        li   x10, 0
                     li   x11, 30
             loop:   jal  x31, addone
                     blt  x10, x11, loop
                     halt
             addone: addi x10, x10, 1
                     jr   x31",
        );
        assert_eq!(r.checksum, golden);
        assert_eq!(r.stats.committed, 2 + 30 * 4 + 1);
    }

    #[test]
    fn max_commits_stops_early() {
        let program = Assembler::new()
            .assemble("loop: addi x1, x1, 1\nj loop\nhalt")
            .unwrap();
        let mut sim = Simulator::new(
            &program,
            CoreConfig::config2(),
            Box::new(BaselinePolicy::new()),
        );
        let opts = SimOptions {
            max_commits: Some(500),
            ..SimOptions::default()
        };
        let r = sim.run(opts).unwrap();
        assert!(!r.halted);
        assert!(r.stats.committed >= 500 && r.stats.committed < 520);
    }

    #[test]
    fn cycle_limit_errors() {
        let program = Assembler::new().assemble("loop: j loop\nhalt").unwrap();
        let mut sim = Simulator::new(
            &program,
            CoreConfig::config2(),
            Box::new(BaselinePolicy::new()),
        );
        let err = sim
            .run(SimOptions {
                max_cycles: 1000,
                ..SimOptions::default()
            })
            .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { .. }), "{err}");
    }

    #[test]
    fn all_three_configs_agree_architecturally() {
        let src = "        li   x1, 0x7000
                           li   x2, 0
                           li   x3, 64
                   loop:   muli x4, x2, 4
                           add  x4, x4, x1
                           mul  x5, x2, x2
                           sw   x5, 0(x4)
                           lw   x6, 0(x4)
                           add  x7, x7, x6
                           addi x2, x2, 1
                           blt  x2, x3, loop
                           halt";
        let program = Assembler::new().assemble(src).unwrap();
        let mut emu = Emulator::new(&program);
        emu.run(1_000_000).unwrap();
        for config in CoreConfig::all() {
            let mut sim = Simulator::new(&program, config.clone(), Box::new(BaselinePolicy::new()));
            let r = sim.run(SimOptions::default()).unwrap();
            assert_eq!(r.checksum, emu.state_checksum(), "{} diverged", config.name);
        }
    }

    #[test]
    fn invalidations_do_not_change_results() {
        let src = "        li   x1, 0x2000
                           li   x2, 0
                           li   x3, 100
                   loop:   andi x4, x2, 63
                           muli x4, x4, 8
                           add  x4, x4, x1
                           sd   x2, 0(x4)
                           ld   x5, 0(x4)
                           add  x6, x6, x5
                           addi x2, x2, 1
                           blt  x2, x3, loop
                           halt";
        let program = Assembler::new()
            .assemble(src)
            .unwrap()
            // Pre-declare the data page so the injector has a footprint.
            .with_data(Addr(0x2000), vec![0u8; 512]);
        let mut emu = Emulator::new(&program);
        emu.run(1_000_000).unwrap();
        let mut sim = Simulator::new(
            &program,
            CoreConfig::config2(),
            Box::new(BaselinePolicy::with_coherence(128)),
        );
        let opts = SimOptions {
            inval_per_kcycle: 100.0,
            inval_seed: 7,
            ..SimOptions::default()
        };
        let r = sim.run(opts).unwrap();
        assert_eq!(r.checksum, emu.state_checksum());
        assert!(
            r.stats.policy.invalidations > 0,
            "invalidations should have been injected"
        );
    }

    #[test]
    fn lq_energy_counters_accumulate() {
        let (r, _) = run_program(
            "        li   x1, 0x1000
                     li   x2, 0
                     li   x3, 50
             loop:   sw   x2, 0(x1)
                     lw   x4, 0(x1)
                     addi x2, x2, 1
                     blt  x2, x3, loop
                     halt",
        );
        assert!(
            r.stats.energy.lq_cam_searches >= 50,
            "every store searches the LQ"
        );
        assert!(
            r.stats.energy.sq_cam_searches >= 50,
            "every load searches the SQ"
        );
        assert!(r.stats.energy.lq_writes >= 50);
        assert!(r.stats.energy.sq_writes >= 50);
    }
}
