//! An execution-driven out-of-order processor simulator.
//!
//! This crate is the substrate the DMDC reproduction evaluates on — the
//! role SimpleScalar's `sim-outorder` plays in the paper. It models an
//! 8-wide machine with register renaming over physical register files, a
//! combined bimodal/gshare branch predictor with a BTB, a two-level cache
//! hierarchy, issue queues with oldest-first select, and an age-ordered
//! load/store queue pair with store-to-load forwarding and load rejection.
//!
//! Values really flow through the pipeline: wrong-path instructions execute
//! with whatever register values they see, and loads that issue past
//! unresolved older stores genuinely read stale memory. Memory-order
//! recovery is delegated to a pluggable [`MemDepPolicy`] — the conventional
//! CAM-searched load queue ([`BaselinePolicy`]) lives here; the paper's YLA
//! filtering and DMDC designs live in the `dmdc-core` crate.
//!
//! # Examples
//!
//! ```
//! use dmdc_isa::Assembler;
//! use dmdc_ooo::{BaselinePolicy, CoreConfig, SimOptions, Simulator};
//!
//! let program = Assembler::new()
//!     .assemble("li x1, 0x1000\nli x2, 9\nsw x2, 0(x1)\nlw x3, 0(x1)\nhalt")
//!     .unwrap();
//! let mut sim = Simulator::new(&program, CoreConfig::config2(), Box::new(BaselinePolicy::new()));
//! let result = sim.run(SimOptions::default()).unwrap();
//! assert!(result.halted);
//! assert_eq!(result.stats.loads, 1);
//! assert_eq!(result.stats.stores, 1);
//! ```

pub mod audit;
mod baseline;
mod bpred;
mod cache;
mod config;
mod core;
mod exec;
mod lsq;
mod multicore;
mod regs;
mod stats;
mod trace;

pub use audit::{AuditKind, AuditReport, AuditViolation};
pub use baseline::{search_lq_for_premature_loads, BaselinePolicy};
pub use bpred::{BranchPredictor, Btb, HistorySnapshot};
pub use cache::{Cache, MemoryHierarchy};
pub use config::{CacheConfig, CoreConfig};
pub use core::{SampleSpec, SimError, SimOptions, SimResult, Simulator};
pub use exec::{compute, extract_forwarded, load_value, size_mask, store_raw, ExecOutcome};
pub use lsq::{
    CheckOutcome, CommitInfo, CommitKind, LoadEntry, LoadQueue, MemDepPolicy, PolicyCtx,
    StoreEntry, StoreQueue, StoreResolution,
};
pub use multicore::{
    run_multicore, BusStats, CoreOutcome, MesiState, MultiCoreError, MultiCoreOptions,
    MultiCoreResult,
};
pub use regs::{Operand, PhysReg, RegFiles, RegValue};
pub use stats::{
    from_q32, to_q32, CacheStats, EnergyCounters, PolicyStats, ReplayBreakdown, ReplayKind,
    SamplingStats, SimProfile, SimStats, PROFILE_STAGES, PROFILE_STAGE_NAMES,
};
pub use trace::{PipelineTrace, Stage, TraceEvent};

/// Version tag of the simulator's observable semantics. Bump whenever a
/// change alters any number a simulation can report (timing, stats,
/// replay classification, ...): persistent result caches key on this
/// string, so a stale value silently revives outdated cached cells.
///
/// `v2` = the event-driven core of PR 2 (bit-identical to the per-cycle
/// loop, so the PR 2 refactor itself did not need a bump).
/// `v3` = the sampling engine of PR 6: `SimStats` grew sampling fields
/// (the export schema changed) and `SimOptions` grew the sampling spec.
pub const SIM_FINGERPRINT: &str = "dmdc-ooo-v3";
