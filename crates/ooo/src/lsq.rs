//! Load/store queues and the [`MemDepPolicy`] trait — the seam where the
//! paper's mechanisms plug into the core.
//!
//! The core owns the authoritative queues (they gate rename and drive
//! forwarding); a policy decides *how dependence violations are detected*:
//! the conventional design searches the load queue associatively at store
//! resolve, YLA filtering skips provably safe searches, and DMDC replaces
//! the search with commit-time table checks. Policies report structure
//! accesses through [`PolicyCtx`] so the energy model can price each design.

use dmdc_types::{Age, Cycle, MemSpan};

use crate::stats::{EnergyCounters, PolicyStats};

/// One load-queue entry. Allocated in program order at rename; filled in at
/// issue.
#[derive(Debug, Clone, Copy)]
pub struct LoadEntry {
    /// The load's age.
    pub age: Age,
    /// Address span, known once the load has issued.
    pub span: Option<MemSpan>,
    /// Whether the load has issued (address generated, memory accessed).
    pub issued: bool,
    /// Safe-load bit: at issue, every older store in the SQ had a resolved
    /// address, so no store-load replay can ever hit this load (paper §4.2).
    pub safe: bool,
    /// Scratch bit for policies (conventional coherence uses it as the
    /// invalidation mark of \[22\]).
    pub inv_marked: bool,
    /// Cycle of the load's (final) issue.
    pub issue_cycle: Option<Cycle>,
}

/// The load queue: an age-ordered FIFO of [`LoadEntry`].
///
/// Whether it is *searched associatively* is the policy's business; the
/// queue itself only models occupancy and provides iteration.
#[derive(Debug, Clone, Default)]
pub struct LoadQueue {
    entries: std::collections::VecDeque<LoadEntry>,
    capacity: usize,
}

impl LoadQueue {
    /// Creates a queue with the given capacity.
    pub fn new(capacity: usize) -> LoadQueue {
        LoadQueue {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Entries currently allocated.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no loads are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an allocation would overflow.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Allocates an entry at the tail (rename order).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or ages are not monotonic — both core
    /// bugs, not runtime conditions.
    pub fn allocate(&mut self, age: Age) {
        assert!(!self.is_full(), "load queue overflow");
        if let Some(back) = self.entries.back() {
            assert!(
                back.age.is_older_than(age),
                "load queue ages must be monotonic"
            );
        }
        self.entries.push_back(LoadEntry {
            age,
            span: None,
            issued: false,
            safe: false,
            inv_marked: false,
            issue_cycle: None,
        });
    }

    /// Mutable access to the entry with the given age.
    pub fn entry_mut(&mut self, age: Age) -> Option<&mut LoadEntry> {
        let idx = self.entries.binary_search_by_key(&age, |e| e.age).ok()?;
        Some(&mut self.entries[idx])
    }

    /// Shared access to the entry with the given age.
    pub fn entry(&self, age: Age) -> Option<&LoadEntry> {
        let idx = self.entries.binary_search_by_key(&age, |e| e.age).ok()?;
        Some(&self.entries[idx])
    }

    /// Pops the head entry, which must have the given age (commit order).
    ///
    /// # Panics
    ///
    /// Panics if the head is missing or has a different age.
    pub fn pop_head(&mut self, age: Age) -> LoadEntry {
        let head = self.entries.pop_front().expect("popping empty load queue");
        assert_eq!(head.age, age, "load queue commit order violated");
        head
    }

    /// Drops every entry with `age >= first_squashed`.
    pub fn squash(&mut self, first_squashed: Age) {
        while let Some(back) = self.entries.back() {
            if back.age >= first_squashed {
                self.entries.pop_back();
            } else {
                break;
            }
        }
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &LoadEntry> {
        self.entries.iter()
    }

    /// Iterates entries oldest-first, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut LoadEntry> {
        self.entries.iter_mut()
    }
}

/// One store-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct StoreEntry {
    /// The store's age.
    pub age: Age,
    /// Address span, known once address generation completed.
    pub span: Option<MemSpan>,
    /// Raw little-endian data bytes (low `span.size` bytes valid) once the
    /// data operand is ready. Captured lazily by the core from the physical
    /// register file.
    pub data: Option<u64>,
    /// Whether the store was classified *safe* at resolve time by the
    /// active policy (recorded in the SQ per paper §4.1 step 1).
    pub safe: bool,
}

/// The store queue: age-ordered, with resolved-address forwarding handled by
/// the core (conventional in every design the paper considers).
#[derive(Debug, Clone, Default)]
pub struct StoreQueue {
    entries: std::collections::VecDeque<StoreEntry>,
    capacity: usize,
}

impl StoreQueue {
    /// Creates a queue with the given capacity.
    pub fn new(capacity: usize) -> StoreQueue {
        StoreQueue {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Entries currently allocated.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no stores are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an allocation would overflow.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Allocates an entry at the tail (rename order).
    ///
    /// # Panics
    ///
    /// Panics on overflow or non-monotonic ages (core bugs).
    pub fn allocate(&mut self, age: Age) {
        assert!(!self.is_full(), "store queue overflow");
        if let Some(back) = self.entries.back() {
            assert!(
                back.age.is_older_than(age),
                "store queue ages must be monotonic"
            );
        }
        self.entries.push_back(StoreEntry {
            age,
            span: None,
            data: None,
            safe: false,
        });
    }

    /// Mutable access to the entry with the given age.
    pub fn entry_mut(&mut self, age: Age) -> Option<&mut StoreEntry> {
        let idx = self.entries.binary_search_by_key(&age, |e| e.age).ok()?;
        Some(&mut self.entries[idx])
    }

    /// Shared access to the entry with the given age.
    pub fn entry(&self, age: Age) -> Option<&StoreEntry> {
        let idx = self.entries.binary_search_by_key(&age, |e| e.age).ok()?;
        Some(&self.entries[idx])
    }

    /// Pops the head entry, which must have the given age (commit order).
    ///
    /// # Panics
    ///
    /// Panics if the head is missing or has a different age.
    pub fn pop_head(&mut self, age: Age) -> StoreEntry {
        let head = self.entries.pop_front().expect("popping empty store queue");
        assert_eq!(head.age, age, "store queue commit order violated");
        head
    }

    /// Drops every entry with `age >= first_squashed`.
    pub fn squash(&mut self, first_squashed: Age) {
        while let Some(back) = self.entries.back() {
            if back.age >= first_squashed {
                self.entries.pop_back();
            } else {
                break;
            }
        }
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &StoreEntry> {
        self.entries.iter()
    }

    /// True if every store older than `age` has a resolved address — the
    /// safe-load condition of paper §4.2 (Figure 1(b) logic).
    pub fn all_older_resolved(&self, age: Age) -> bool {
        self.entries
            .iter()
            .take_while(|e| e.age.is_older_than(age))
            .all(|e| e.span.is_some())
    }

    /// The youngest store older than `age` whose resolved span overlaps
    /// `span` — the forwarding candidate. Returns `None` when no resolved
    /// older store overlaps (the load may still be speculating past
    /// *unresolved* stores).
    pub fn youngest_older_overlap(&self, age: Age, span: MemSpan) -> Option<&StoreEntry> {
        self.entries
            .iter()
            .take_while(|e| e.age.is_older_than(age))
            .filter(|e| e.span.is_some_and(|s| s.overlaps(span)))
            .last()
    }
}

/// Mutable context handed to every policy hook: the cycle clock plus the
/// shared statistics sinks.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// Current cycle.
    pub cycle: Cycle,
    /// Structure-access counters (energy accounting).
    pub energy: &'a mut EnergyCounters,
    /// Policy statistics (filter rates, windows, replay taxonomy).
    pub stats: &'a mut PolicyStats,
}

/// What a committing instruction looks like to the policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitInfo {
    /// The instruction's age.
    pub age: Age,
    /// Broad kind.
    pub kind: CommitKind,
    /// For loads/stores, the accessed span.
    pub span: Option<MemSpan>,
    /// For loads, the safe-load bit.
    pub safe_load: bool,
    /// For loads: whether the value obtained at execution equals committed
    /// memory right now (all older stores have committed). `false` means
    /// the load is stale and *must* be replayed.
    pub value_correct: bool,
    /// For loads, the final issue cycle.
    pub issue_cycle: Option<Cycle>,
}

/// Commit-time instruction kinds the policies distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitKind {
    /// A memory load.
    Load,
    /// A memory store.
    Store,
    /// Anything else.
    Other,
}

/// A policy's verdict on a committing instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Let it commit.
    Ok,
    /// Squash at this instruction and refetch it (only meaningful for
    /// loads). The [`crate::stats::ReplayKind`] was already recorded by the
    /// policy.
    Replay,
}

/// The memory-dependence enforcement policy: conventional CAM search, YLA
/// filtering, DMDC, or any other design.
///
/// Hook-call contract (enforced by the core):
///
/// * `on_load_issue` — after the core fills the load's LQ entry; may demand
///   an immediate replay (conventional load-load coherence).
/// * `on_store_resolve` — when a store's address generation completes; may
///   demand an immediate replay of a premature load (conventional design).
/// * `on_commit` — for **every** committing instruction, in program order;
///   a `Replay` verdict squashes at that instruction (DMDC's delayed check).
/// * `on_squash` — after any squash; `youngest_surviving` is the age of the
///   youngest instruction left in the pipeline (YLA repair hook).
/// * `on_invalidation` — an external coherence invalidation arrived.
/// * `on_cycle` — once per simulated cycle (checking-mode cycle counting).
///
/// The **safety contract**: if a committing load has `value_correct ==
/// false`, some policy hook must have arranged for `Replay`; the core
/// panics otherwise, because committing a stale load corrupts architectural
/// state. (The conventional design discharges this at `on_store_resolve`
/// time instead — by the time a premature load reaches commit it has been
/// squashed and re-executed.)
pub trait MemDepPolicy {
    /// Display name used in reports.
    fn name(&self) -> &str;

    /// Whether the design requires an associative (CAM) load queue. DMDC
    /// returns `false`: its LQ is a FIFO of hash keys, which also lets the
    /// core lift the in-flight-load limit to the ROB size (paper §6.2.1).
    fn needs_associative_lq(&self) -> bool {
        true
    }

    /// A load issued. Returns `Some(age)` to replay from that age now.
    fn on_load_issue(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        safe: bool,
        lq: &mut LoadQueue,
    ) -> Option<Age>;

    /// A store's address resolved. Returns `Some(age)` to replay from that
    /// age now. Must set the store's `safe` classification via the returned
    /// [`StoreResolution`].
    fn on_store_resolve(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        lq: &LoadQueue,
    ) -> StoreResolution;

    /// An instruction is committing.
    fn on_commit(&mut self, ctx: &mut PolicyCtx<'_>, info: &CommitInfo) -> CheckOutcome;

    /// The pipeline squashed everything younger than `youngest_surviving`.
    fn on_squash(&mut self, ctx: &mut PolicyCtx<'_>, youngest_surviving: Age);

    /// An external invalidation for the cache line at `line_addr` (size
    /// `line_bytes`) arrived. Returns `Some(age)` to replay from that age
    /// now.
    fn on_invalidation(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        line_addr: dmdc_types::Addr,
        line_bytes: u64,
        lq: &mut LoadQueue,
    ) -> Option<Age> {
        let _ = (ctx, line_addr, line_bytes, lq);
        None
    }

    /// Called once per simulated cycle.
    fn on_cycle(&mut self, ctx: &mut PolicyCtx<'_>) {
        let _ = ctx;
    }

    /// Whether [`MemDepPolicy::on_cycle`] does anything. The simulator
    /// builds a [`PolicyCtx`] and invokes the hook only when this returns
    /// `true`, so hook-less policies pay nothing per cycle.
    ///
    /// **Override this to return `true` whenever `on_cycle` is
    /// overridden** — leaving it `false` silently disables the hook.
    fn has_cycle_hook(&self) -> bool {
        false
    }

    /// Audit-mode self-check (see [`crate::audit`], invariant 7): returns
    /// a description of the first internal inconsistency found — between
    /// the policy's private structures themselves, or between them and the
    /// core's load queue — or `None` when everything is coherent. Called
    /// once per audited cycle, never on unaudited runs; implementations
    /// should keep the clean path cheap. The default has nothing to check.
    fn audit_self(&self, lq: &LoadQueue) -> Option<String> {
        let _ = lq;
        None
    }

    /// Called in place of `n` consecutive [`MemDepPolicy::on_cycle`] calls
    /// when the simulator fast-forwards over the provably idle cycles
    /// `ctx.cycle + 1 ..= ctx.cycle + n`. No other hook fires anywhere in
    /// that span. The default replays `on_cycle` once per skipped cycle
    /// (with `ctx.cycle` advanced accordingly); policies whose hook is a
    /// plain counter should override this with an O(1) batch update.
    fn on_idle_cycles(&mut self, ctx: &mut PolicyCtx<'_>, n: u64) {
        let base = ctx.cycle;
        for i in 1..=n {
            ctx.cycle = base.plus(i);
            self.on_cycle(ctx);
        }
        ctx.cycle = base;
    }
}

/// Result of [`MemDepPolicy::on_store_resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreResolution {
    /// Whether the store was classified safe (recorded in the SQ entry).
    pub safe: bool,
    /// If `Some`, squash from this age now (a detected premature load).
    pub replay_from: Option<Age>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_types::{AccessSize, Addr};

    fn span(addr: u64, bytes: u64) -> MemSpan {
        MemSpan::new(Addr(addr), AccessSize::from_bytes(bytes).unwrap())
    }

    #[test]
    fn load_queue_alloc_pop_order() {
        let mut lq = LoadQueue::new(4);
        lq.allocate(Age(1));
        lq.allocate(Age(5));
        assert_eq!(lq.len(), 2);
        assert!(!lq.is_full());
        let e = lq.pop_head(Age(1));
        assert_eq!(e.age, Age(1));
        assert_eq!(lq.len(), 1);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn load_queue_rejects_out_of_order_ages() {
        let mut lq = LoadQueue::new(4);
        lq.allocate(Age(5));
        lq.allocate(Age(3));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn load_queue_overflow_panics() {
        let mut lq = LoadQueue::new(1);
        lq.allocate(Age(1));
        lq.allocate(Age(2));
    }

    #[test]
    fn load_queue_squash_drops_young() {
        let mut lq = LoadQueue::new(8);
        for a in [1u64, 3, 7, 9] {
            lq.allocate(Age(a));
        }
        lq.squash(Age(7));
        let ages: Vec<_> = lq.iter().map(|e| e.age.0).collect();
        assert_eq!(ages, vec![1, 3]);
    }

    #[test]
    fn load_queue_entry_lookup() {
        let mut lq = LoadQueue::new(8);
        lq.allocate(Age(2));
        lq.allocate(Age(4));
        lq.entry_mut(Age(4)).unwrap().issued = true;
        assert!(lq.entry(Age(4)).unwrap().issued);
        assert!(!lq.entry(Age(2)).unwrap().issued);
        assert!(lq.entry(Age(3)).is_none());
    }

    #[test]
    fn store_queue_forwarding_candidate() {
        let mut sq = StoreQueue::new(8);
        sq.allocate(Age(1));
        sq.allocate(Age(3));
        sq.allocate(Age(5));
        sq.entry_mut(Age(1)).unwrap().span = Some(span(0x100, 8));
        sq.entry_mut(Age(3)).unwrap().span = Some(span(0x100, 4));
        // Age 5 unresolved.
        let cand = sq.youngest_older_overlap(Age(7), span(0x100, 4)).unwrap();
        assert_eq!(cand.age, Age(3), "youngest resolved older overlap wins");
        // A load older than every store sees no candidate.
        assert!(sq.youngest_older_overlap(Age(0), span(0x100, 4)).is_none());
        // Non-overlapping span.
        assert!(sq.youngest_older_overlap(Age(7), span(0x900, 4)).is_none());
    }

    #[test]
    fn store_queue_safe_load_condition() {
        let mut sq = StoreQueue::new(8);
        sq.allocate(Age(1));
        sq.allocate(Age(3));
        sq.entry_mut(Age(1)).unwrap().span = Some(span(0x100, 8));
        assert!(!sq.all_older_resolved(Age(5)), "age 3 unresolved");
        assert!(
            sq.all_older_resolved(Age(2)),
            "only age 1 is older and it resolved"
        );
        sq.entry_mut(Age(3)).unwrap().span = Some(span(0x200, 8));
        assert!(sq.all_older_resolved(Age(5)));
        assert!(sq.all_older_resolved(Age(0)), "no older stores at all");
    }

    #[test]
    fn store_queue_squash_and_pop() {
        let mut sq = StoreQueue::new(8);
        for a in [2u64, 4, 6] {
            sq.allocate(Age(a));
        }
        sq.squash(Age(4));
        assert_eq!(sq.len(), 1);
        let e = sq.pop_head(Age(2));
        assert_eq!(e.age, Age(2));
        assert!(sq.is_empty());
    }
}
