//! The N-core system: MESI-coherent private L1Ds over a shared L2, a
//! snooping interconnect, and the deterministic round-robin driver that
//! steps the per-core simulators against one shared memory (DESIGN.md §15).
//!
//! # Model
//!
//! Each core keeps the single-core [`Simulator`] machinery intact — LSQ,
//! policies, stats, auditor — but its *data* accesses route through a
//! [`CoherenceHub`] instead of the private [`MemoryHierarchy`]: per-core
//! MESI L1D directories over one shared L2, with bus events (BusRd, BusRdX,
//! BusUpgr, writebacks) counted and invalidations delivered to every other
//! core's load queue. Instruction fetch stays on the private hierarchy
//! (cores never write code).
//!
//! # Consistency
//!
//! The system is sequentially consistent by construction:
//!
//! * Cores advance in deterministic round-robin lockstep; only the stepping
//!   core touches shared memory, so each core's step is atomic with respect
//!   to the others.
//! * A store becomes visible at commit (it writes shared memory) and
//!   broadcasts an invalidation to every other core (BusRdX / BusUpgr /
//!   E→M upgrade — see below).
//! * Invalidations queued for a core are drained at the start of its next
//!   step, *before* it can commit anything, and mark every in-flight issued
//!   load to the line (`xinv`). A marked load whose value no longer matches
//!   memory at commit is replayed by the core (counted as a coherence
//!   replay) no matter what the policy decided — the POWER4-style snooping
//!   load queue \[22\] as a safety net under the pluggable policies.
//!
//! Every committed load therefore observes exactly the value of shared
//! memory at its commit point, so the execution is equivalent to the
//! interleaving of commits the driver produced — a sequentially consistent
//! execution. The litmus harness checks observed outcomes against the
//! operational reference ([`dmdc_isa::enumerate_outcomes`]).
//!
//! One deliberate deviation from textbook MESI: the E→M upgrade is *not*
//! silent — it broadcasts an invalidation like BusUpgr (and is counted with
//! the upgrades). A silent E→M would let a store hide from a remote core
//! whose in-flight load read the line before silently evicting it, breaking
//! the snooping-LQ guarantee; broadcasting closes the hole. M-hit stores
//! stay silent, which is safe: acquiring M broadcast an invalidation, and
//! any later remote read demotes M to S.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use dmdc_isa::{Program, SparseMemory};
use dmdc_types::{Addr, SplitMix64};

use crate::cache::Cache;
use crate::config::CoreConfig;
use crate::core::{SimError, SimOptions, SimResult, Simulator};
use crate::lsq::MemDepPolicy;
use crate::stats::CacheStats;

/// MESI coherence states of one L1 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MesiState {
    /// Not present.
    Invalid,
    /// Clean, possibly in other caches.
    Shared,
    /// Clean, sole copy.
    Exclusive,
    /// Dirty, sole copy.
    Modified,
}

impl MesiState {
    fn letter(self) -> char {
        match self {
            MesiState::Invalid => 'I',
            MesiState::Shared => 'S',
            MesiState::Exclusive => 'E',
            MesiState::Modified => 'M',
        }
    }
}

/// What caused a MESI state change — the rows of the legality table the
/// auditor checks every transition against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cause {
    /// A line filled on a local read miss.
    ReadFill,
    /// A line filled on a local write miss (BusRdX).
    WriteFill,
    /// A local store upgraded a resident clean line (BusUpgr / E→M).
    Upgrade,
    /// A remote read demoted this copy (supply / downgrade).
    SnoopRead,
    /// A remote write invalidated this copy.
    SnoopWrite,
    /// Capacity/conflict eviction.
    Evict,
}

/// The MESI state-transition legality table. Everything not listed is a
/// protocol bug.
fn transition_legal(from: MesiState, to: MesiState, cause: Cause) -> bool {
    use MesiState::*;
    match cause {
        Cause::ReadFill => from == Invalid && matches!(to, Shared | Exclusive),
        Cause::WriteFill => from == Invalid && to == Modified,
        Cause::Upgrade => matches!(from, Shared | Exclusive) && to == Modified,
        Cause::SnoopRead => matches!(from, Modified | Exclusive) && to == Shared,
        Cause::SnoopWrite => matches!(from, Modified | Exclusive | Shared) && to == Invalid,
        Cause::Evict => from != Invalid && to == Invalid,
    }
}

/// One core's private L1D directory: set-associative tags with true-LRU
/// replacement and a MESI state per line. Stores whole line ids (not
/// set-relative tags) so victims can be named for writeback.
#[derive(Debug, Clone)]
struct MesiL1 {
    sets: u64,
    ways: usize,
    /// Line id per (set, way); u64::MAX = invalid.
    lines: Vec<u64>,
    states: Vec<MesiState>,
    lru: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl MesiL1 {
    fn new(config: &crate::config::CacheConfig) -> MesiL1 {
        let sets = config.sets();
        let ways = config.ways as usize;
        MesiL1 {
            sets,
            ways,
            lines: vec![u64::MAX; sets as usize * ways],
            states: vec![MesiState::Invalid; sets as usize * ways],
            lru: vec![0; sets as usize * ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn base_of(&self, line: u64) -> usize {
        (line & (self.sets - 1)) as usize * self.ways
    }

    /// Index of a *valid* copy of `line`, if resident.
    fn find(&self, line: u64) -> Option<usize> {
        let base = self.base_of(line);
        (base..base + self.ways)
            .find(|&i| self.lines[i] == line && self.states[i] != MesiState::Invalid)
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.lru[idx] = self.tick;
    }

    /// Fills `line` in state `state`, evicting the LRU way if the set is
    /// full. Returns the evicted `(line, state)` when a valid victim was
    /// displaced.
    fn fill(&mut self, line: u64, state: MesiState) -> Option<(u64, MesiState)> {
        let base = self.base_of(line);
        let slot = (base..base + self.ways)
            .find(|&i| self.states[i] == MesiState::Invalid)
            .unwrap_or_else(|| {
                (base..base + self.ways)
                    .min_by_key(|&i| self.lru[i])
                    .expect("ways > 0")
            });
        let victim = (self.states[slot] != MesiState::Invalid)
            .then(|| (self.lines[slot], self.states[slot]));
        self.lines[slot] = line;
        self.states[slot] = state;
        self.touch(slot);
        victim
    }
}

/// Bus / interconnect event counters for one multi-core run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Read misses that went to the bus (BusRd).
    pub bus_reads: u64,
    /// Write misses that went to the bus (BusRdX).
    pub bus_read_x: u64,
    /// Resident-line write upgrades (BusUpgr, including E→M).
    pub bus_upgrades: u64,
    /// Dirty lines written back to the shared L2.
    pub writebacks: u64,
    /// Invalidation messages delivered to remote cores' load queues.
    pub invals_sent: u64,
}

/// The snooping interconnect: per-core MESI L1D directories, the shared L2,
/// pending invalidation queues, and the coherence auditor (SWMR +
/// transition legality).
pub(crate) struct CoherenceHub {
    line_bytes: u64,
    l1_latency: u64,
    l2: Cache,
    memory_latency: u64,
    l1: Vec<MesiL1>,
    /// Invalidated line *addresses* awaiting delivery, per core.
    pending: Vec<VecDeque<u64>>,
    stats: BusStats,
    audit: bool,
    violations: Vec<String>,
}

impl CoherenceHub {
    pub(crate) fn new(cores: usize, config: &CoreConfig, audit: bool) -> CoherenceHub {
        CoherenceHub {
            line_bytes: config.l1d.line_bytes,
            l1_latency: config.l1d.latency,
            l2: Cache::new(config.l2),
            memory_latency: config.memory_latency,
            l1: (0..cores).map(|_| MesiL1::new(&config.l1d)).collect(),
            pending: (0..cores).map(|_| VecDeque::new()).collect(),
            stats: BusStats::default(),
            audit,
            violations: Vec::new(),
        }
    }

    /// The coherence line size (the L1D line).
    pub(crate) fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    fn line_of(&self, addr: Addr) -> u64 {
        addr.cache_line(self.line_bytes)
    }

    fn record_violation(&mut self, msg: String) {
        if self.violations.len() < 32 {
            self.violations.push(msg);
        }
    }

    /// Applies one state change with the legality table consulted first
    /// (audit mode only; the check is free when off).
    fn set_state_checked(&mut self, core: usize, idx: usize, to: MesiState, cause: Cause) {
        let from = self.l1[core].states[idx];
        if self.audit && !transition_legal(from, to, cause) {
            let line = self.l1[core].lines[idx];
            self.record_violation(format!(
                "illegal MESI transition {}→{} ({cause:?}) core {core} line {:#x}",
                from.letter(),
                to.letter(),
                line * self.line_bytes,
            ));
        }
        self.l1[core].states[idx] = to;
    }

    /// SWMR: at most one M/E holder of `line` system-wide, and an M/E
    /// holder excludes every other valid copy.
    fn check_swmr(&mut self, line: u64) {
        if !self.audit {
            return;
        }
        let mut owners = 0usize;
        let mut valid = 0usize;
        for l1 in &self.l1 {
            if let Some(idx) = l1.find(line) {
                valid += 1;
                if matches!(l1.states[idx], MesiState::Modified | MesiState::Exclusive) {
                    owners += 1;
                }
            }
        }
        if owners > 1 || (owners == 1 && valid > 1) {
            self.record_violation(format!(
                "SWMR violated on line {:#x}: {owners} owners among {valid} copies",
                line * self.line_bytes
            ));
        }
    }

    /// Fills `line` into `core`'s L1 with the legality table consulted for
    /// both the fill (I→`state`) and any eviction it forces (victim→I);
    /// dirty victims write back to the shared L2.
    fn fill_checked(&mut self, core: usize, line: u64, state: MesiState, cause: Cause) {
        if self.audit && !transition_legal(MesiState::Invalid, state, cause) {
            self.record_violation(format!(
                "illegal MESI fill I→{} ({cause:?}) core {core} line {:#x}",
                state.letter(),
                line * self.line_bytes,
            ));
        }
        if let Some((victim, victim_state)) = self.l1[core].fill(line, state) {
            if self.audit && !transition_legal(victim_state, MesiState::Invalid, Cause::Evict) {
                self.record_violation(format!(
                    "illegal MESI eviction {}→I core {core} line {:#x}",
                    victim_state.letter(),
                    victim * self.line_bytes,
                ));
            }
            if victim_state == MesiState::Modified {
                self.stats.writebacks += 1;
                self.l2.access(Addr(victim * self.line_bytes));
            }
        }
    }

    /// Broadcasts an invalidation for `line` from `from_core`: every other
    /// core's L1 copy is invalidated and the line address is queued for
    /// delivery into that core's load queue at its next step.
    fn broadcast_invalidation(&mut self, from_core: usize, line: u64) {
        for core in 0..self.l1.len() {
            if core == from_core {
                continue;
            }
            if let Some(idx) = self.l1[core].find(line) {
                let state = self.l1[core].states[idx];
                if state == MesiState::Modified {
                    self.stats.writebacks += 1;
                    self.l2.access(Addr(line * self.line_bytes));
                }
                self.set_state_checked(core, idx, MesiState::Invalid, Cause::SnoopWrite);
            }
            self.pending[core].push_back(line * self.line_bytes);
            self.stats.invals_sent += 1;
        }
    }

    /// A load from `core` to `addr`: returns the access latency.
    pub(crate) fn read(&mut self, core: usize, addr: Addr) -> u64 {
        let line = self.line_of(addr);
        if let Some(idx) = self.l1[core].find(line) {
            self.l1[core].touch(idx);
            self.l1[core].stats.hits += 1;
            return self.l1_latency;
        }
        self.l1[core].stats.misses += 1;
        self.stats.bus_reads += 1;
        // Snoop: a remote M supplies the data (via writeback) and demotes;
        // a remote E demotes to S.
        let mut sharers = false;
        let mut remote_m = false;
        for other in 0..self.l1.len() {
            if other == core {
                continue;
            }
            if let Some(idx) = self.l1[other].find(line) {
                sharers = true;
                match self.l1[other].states[idx] {
                    MesiState::Modified => {
                        remote_m = true;
                        self.stats.writebacks += 1;
                        self.l2.access(Addr(line * self.line_bytes));
                        self.set_state_checked(other, idx, MesiState::Shared, Cause::SnoopRead);
                    }
                    MesiState::Exclusive => {
                        self.set_state_checked(other, idx, MesiState::Shared, Cause::SnoopRead);
                    }
                    MesiState::Shared => {}
                    MesiState::Invalid => unreachable!("find returns valid copies"),
                }
            }
        }
        let latency = if remote_m {
            // Cache-to-cache through the shared L2.
            self.l1_latency + self.l2.latency
        } else if self.l2.access(addr) {
            self.l1_latency + self.l2.latency
        } else {
            self.l1_latency + self.l2.latency + self.memory_latency
        };
        let state = if sharers {
            MesiState::Shared
        } else {
            MesiState::Exclusive
        };
        self.fill_checked(core, line, state, Cause::ReadFill);
        self.check_swmr(line);
        latency
    }

    /// A store from `core` to `addr` (commit time): returns the latency.
    pub(crate) fn write(&mut self, core: usize, addr: Addr) -> u64 {
        let line = self.line_of(addr);
        if let Some(idx) = self.l1[core].find(line) {
            self.l1[core].touch(idx);
            self.l1[core].stats.hits += 1;
            match self.l1[core].states[idx] {
                MesiState::Modified => return self.l1_latency,
                // E→M and S→M both broadcast (see module docs on why the
                // E upgrade is not silent here).
                MesiState::Exclusive | MesiState::Shared => {
                    self.stats.bus_upgrades += 1;
                    self.set_state_checked(core, idx, MesiState::Modified, Cause::Upgrade);
                    self.broadcast_invalidation(core, line);
                    self.check_swmr(line);
                    return self.l1_latency;
                }
                MesiState::Invalid => unreachable!("find returns valid copies"),
            }
        }
        // Write miss: BusRdX fetches the line for ownership and
        // invalidates every other copy.
        self.l1[core].stats.misses += 1;
        self.stats.bus_read_x += 1;
        let remote_m = (0..self.l1.len()).any(|other| {
            other != core
                && self.l1[other]
                    .find(line)
                    .is_some_and(|idx| self.l1[other].states[idx] == MesiState::Modified)
        });
        self.broadcast_invalidation(core, line);
        // Dirty cache-to-cache supply costs the same as an L2 hit but must
        // not touch L2 state, hence the short-circuit.
        let latency = if remote_m || self.l2.access(addr) {
            self.l1_latency + self.l2.latency
        } else {
            self.l1_latency + self.l2.latency + self.memory_latency
        };
        self.fill_checked(core, line, MesiState::Modified, Cause::WriteFill);
        self.check_swmr(line);
        latency
    }

    /// Moves every invalidation queued for `core` into `out` (line-aligned
    /// addresses, delivery order preserved).
    pub(crate) fn drain(&mut self, core: usize, out: &mut Vec<u64>) {
        out.extend(self.pending[core].drain(..));
    }

    fn l1_stats(&self, core: usize) -> CacheStats {
        self.l1[core].stats
    }
}

/// Run-control options for a multi-core run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiCoreOptions {
    /// Hard limit on driver cycles.
    pub max_cycles: u64,
    /// Seed for the deterministic interleaving (per-core start skew and
    /// round-robin rotation). Same seed + same inputs = same run, bit for
    /// bit.
    pub seed: u64,
    /// Largest per-core start skew (cycles) drawn from the seed. Skews
    /// diversify interleavings across seeds without breaking determinism.
    pub max_skew: u64,
    /// Run the per-core invariant auditors and the hub's coherence checks
    /// (SWMR, transition legality, INV-bit consistency).
    pub audit: bool,
}

impl Default for MultiCoreOptions {
    fn default() -> MultiCoreOptions {
        MultiCoreOptions {
            max_cycles: 10_000_000,
            seed: 1,
            max_skew: 64,
            audit: cfg!(feature = "audit"),
        }
    }
}

/// Why a multi-core run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiCoreError {
    /// The driver cycle limit elapsed before every core halted.
    CycleLimit {
        /// The limit that was hit.
        max_cycles: u64,
        /// Total commits across cores by then.
        committed: u64,
    },
    /// A core's own simulation failed.
    Core {
        /// Which core.
        core: usize,
        /// Its error.
        error: SimError,
    },
}

impl std::fmt::Display for MultiCoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiCoreError::CycleLimit {
                max_cycles,
                committed,
            } => write!(
                f,
                "multicore cycle limit {max_cycles} reached after {committed} total commits"
            ),
            MultiCoreError::Core { core, error } => write!(f, "core {core}: {error}"),
        }
    }
}

impl std::error::Error for MultiCoreError {}

/// One core's outcome within a [`MultiCoreResult`].
#[derive(Debug, Clone)]
pub struct CoreOutcome {
    /// The full single-core result (stats, audit report, ...). The
    /// `checksum` covers this core's registers plus the *shared* memory.
    pub result: SimResult,
    /// Final architectural integer registers — the litmus harness reads
    /// observer registers out of these.
    pub int_regs: [u64; 32],
}

/// The outcome of a [`run_multicore`] call.
#[derive(Debug, Clone)]
pub struct MultiCoreResult {
    /// Per-core outcomes, in core order.
    pub cores: Vec<CoreOutcome>,
    /// Interconnect event counters.
    pub bus: BusStats,
    /// The shared L2's hit/miss counters.
    pub shared_l2: CacheStats,
    /// Coherence-protocol violations found by the hub auditor (always
    /// empty unless [`MultiCoreOptions::audit`] was set — and should be
    /// empty even then).
    pub coherence_violations: Vec<String>,
    /// Driver cycles until the last core halted.
    pub cycles: u64,
    /// Checksum of the final shared memory.
    pub mem_checksum: u64,
}

impl MultiCoreResult {
    /// Reads observer registers as `(core, register)` pairs — the outcome
    /// vector a litmus kernel is judged by.
    pub fn observe(&self, observers: &[(usize, u8)]) -> Vec<u64> {
        observers
            .iter()
            .map(|&(core, reg)| self.cores[core].int_regs[reg as usize])
            .collect()
    }

    /// Total invalidations delivered per 1000 driver cycles — the organic
    /// counterpart of the injected `inval_per_kcycle` knob.
    pub fn invals_per_kcycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.bus.invals_sent as f64 * 1000.0 / self.cycles as f64
    }
}

/// Runs `programs` on an N-core system (one program per core, one policy
/// per core) against shared memory with MESI-coherent L1Ds.
///
/// Cores advance in round-robin lockstep: each driver cycle steps every
/// non-halted core once, in an order rotated by the seed, with seed-derived
/// per-core start skews. Invalidations produced by a core's committed
/// stores are delivered to every other core at the start of that core's
/// next step. The run is fully deterministic in (programs, config,
/// policies, opts).
///
/// # Errors
///
/// [`MultiCoreError::CycleLimit`] if not every core halts in time;
/// [`MultiCoreError::Core`] wraps a per-core failure.
///
/// # Panics
///
/// Panics if `policies` and `programs` differ in length, or on the same
/// simulator-invariant violations as [`Simulator::run`].
pub fn run_multicore(
    programs: &[&Program],
    config: &CoreConfig,
    policies: Vec<Box<dyn MemDepPolicy>>,
    opts: &MultiCoreOptions,
) -> Result<MultiCoreResult, MultiCoreError> {
    assert_eq!(
        programs.len(),
        policies.len(),
        "one policy per core required"
    );
    assert!(!programs.is_empty(), "at least one core required");
    let n = programs.len();
    let hub = Rc::new(RefCell::new(CoherenceHub::new(n, config, opts.audit)));
    let line_bytes = hub.borrow().line_bytes();

    // Shared memory: the union of every program's data segments (the same
    // construction as the reference executor's SharedSystem).
    let mut shared = SparseMemory::new();
    for p in programs {
        for (base, bytes) in p.data_segments() {
            shared.write_bytes(*base, bytes);
        }
    }

    let sim_opts = SimOptions {
        max_cycles: opts.max_cycles,
        audit: opts.audit,
        event_skipping: false,
        ..SimOptions::default()
    };
    let mut sims: Vec<Simulator<'_>> = programs
        .iter()
        .zip(policies)
        .map(|(p, policy)| Simulator::new(p, config.clone(), policy))
        .collect();
    for (i, sim) in sims.iter_mut().enumerate() {
        sim.set_coherence(i, hub.clone());
        sim.mc_prepare(&sim_opts);
    }

    let mut rng = SplitMix64::new(opts.seed);
    let skews: Vec<u64> = (0..n)
        .map(|_| {
            if opts.max_skew == 0 {
                0
            } else {
                rng.next_below(opts.max_skew + 1)
            }
        })
        .collect();
    let rotation = rng.next_below(n as u64) as usize;

    let mut cycle = 0u64;
    let mut inv_buf: Vec<u64> = Vec::new();
    while sims.iter().any(|s| !s.mc_halted()) {
        if cycle >= opts.max_cycles {
            return Err(MultiCoreError::CycleLimit {
                max_cycles: opts.max_cycles,
                committed: sims.iter().map(|s| s.stats().committed).sum(),
            });
        }
        cycle += 1;
        for k in 0..n {
            let i = (k + rotation) % n;
            if cycle <= skews[i] || sims[i].mc_halted() {
                continue;
            }
            inv_buf.clear();
            hub.borrow_mut().drain(i, &mut inv_buf);
            sims[i].swap_mem(&mut shared);
            for &line_addr in &inv_buf {
                sims[i].deliver_invalidation(Addr(line_addr), line_bytes);
            }
            let step = sims[i].mc_step_cycle(&sim_opts);
            sims[i].swap_mem(&mut shared);
            if let Err(error) = step {
                return Err(MultiCoreError::Core { core: i, error });
            }
        }
    }

    let mut cores = Vec::with_capacity(n);
    for (i, sim) in sims.iter_mut().enumerate() {
        // Finalize with the shared memory in place so the per-core checksum
        // covers the real committed state.
        sim.swap_mem(&mut shared);
        let mut result = sim.mc_finalize();
        sim.swap_mem(&mut shared);
        // The data path ran through the hub; surface its per-core L1D
        // counters where single-core reports expect them.
        result.stats.l1d = hub.borrow().l1_stats(i);
        let int_regs = sim.arch_int_regs();
        cores.push(CoreOutcome { result, int_regs });
    }
    drop(sims);
    let hub = Rc::try_unwrap(hub)
        .ok()
        .expect("all simulators dropped their hub links")
        .into_inner();
    Ok(MultiCoreResult {
        cores,
        bus: hub.stats,
        shared_l2: hub.l2.stats,
        coherence_violations: hub.violations,
        cycles: cycle,
        mem_checksum: shared.checksum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselinePolicy;
    use dmdc_isa::Assembler;

    fn asm(src: &str) -> Program {
        Assembler::new().assemble(src).expect("assembles")
    }

    fn small_l1() -> crate::config::CacheConfig {
        crate::config::CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 2,
        }
    }

    fn hub(cores: usize, audit: bool) -> CoherenceHub {
        let mut config = CoreConfig::config2();
        config.l1d = small_l1();
        CoherenceHub::new(cores, &config, audit)
    }

    fn coherent_policies(n: usize, line_bytes: u64) -> Vec<Box<dyn MemDepPolicy>> {
        (0..n)
            .map(|_| Box::new(BaselinePolicy::with_coherence(line_bytes)) as Box<dyn MemDepPolicy>)
            .collect()
    }

    #[test]
    fn read_fills_exclusive_then_demotes_to_shared() {
        let mut h = hub(2, true);
        h.read(0, Addr(0x1000));
        let idx = h.l1[0].find(0x1000 >> 6).unwrap();
        assert_eq!(h.l1[0].states[idx], MesiState::Exclusive);
        h.read(1, Addr(0x1000));
        let idx0 = h.l1[0].find(0x1000 >> 6).unwrap();
        let idx1 = h.l1[1].find(0x1000 >> 6).unwrap();
        assert_eq!(h.l1[0].states[idx0], MesiState::Shared);
        assert_eq!(h.l1[1].states[idx1], MesiState::Shared);
        assert!(h.violations.is_empty(), "{:?}", h.violations);
    }

    #[test]
    fn write_invalidates_remote_copies_and_queues_delivery() {
        let mut h = hub(2, true);
        h.read(1, Addr(0x2000)); // core 1 reads the line (E)
        h.write(0, Addr(0x2000)); // core 0 writes it: BusRdX
        assert!(h.l1[1].find(0x2000 >> 6).is_none(), "remote copy gone");
        let idx = h.l1[0].find(0x2000 >> 6).unwrap();
        assert_eq!(h.l1[0].states[idx], MesiState::Modified);
        let mut out = Vec::new();
        h.drain(1, &mut out);
        assert_eq!(out, vec![0x2000]);
        assert_eq!(h.stats.bus_read_x, 1);
        assert_eq!(h.stats.invals_sent, 1);
        assert!(h.violations.is_empty(), "{:?}", h.violations);
    }

    #[test]
    fn upgrade_broadcasts_and_m_hits_are_silent() {
        let mut h = hub(2, true);
        h.read(0, Addr(0x3000)); // E
        h.write(0, Addr(0x3000)); // E→M upgrade: broadcasts
        assert_eq!(h.stats.bus_upgrades, 1);
        let mut out = Vec::new();
        h.drain(1, &mut out);
        assert_eq!(out.len(), 1);
        h.write(0, Addr(0x3000)); // M hit: silent
        h.write(0, Addr(0x3008)); // same line: still silent
        out.clear();
        h.drain(1, &mut out);
        assert!(out.is_empty(), "M hits must not broadcast");
        assert_eq!(h.stats.bus_upgrades, 1);
    }

    #[test]
    fn remote_modified_writes_back_on_read() {
        let mut h = hub(2, true);
        h.write(0, Addr(0x4000)); // core 0 owns M
        let wb_before = h.stats.writebacks;
        h.read(1, Addr(0x4000));
        assert_eq!(h.stats.writebacks, wb_before + 1);
        let idx0 = h.l1[0].find(0x4000 >> 6).unwrap();
        assert_eq!(h.l1[0].states[idx0], MesiState::Shared);
        assert!(h.violations.is_empty(), "{:?}", h.violations);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut h = hub(1, true);
        // 512B 2-way 64B lines → 4 sets; three lines in one set evict LRU.
        h.write(0, Addr(0));
        h.read(0, Addr(256));
        let wb_before = h.stats.writebacks;
        h.read(0, Addr(512)); // evicts the dirty line at 0
        assert_eq!(h.stats.writebacks, wb_before + 1);
        assert!(h.violations.is_empty(), "{:?}", h.violations);
    }

    #[test]
    fn transition_table_rejects_illegal_moves() {
        use MesiState::*;
        assert!(transition_legal(Invalid, Exclusive, Cause::ReadFill));
        assert!(transition_legal(Shared, Modified, Cause::Upgrade));
        assert!(transition_legal(Modified, Shared, Cause::SnoopRead));
        assert!(transition_legal(Shared, Invalid, Cause::SnoopWrite));
        assert!(!transition_legal(Shared, Exclusive, Cause::Upgrade));
        assert!(!transition_legal(Invalid, Modified, Cause::ReadFill));
        assert!(!transition_legal(Shared, Shared, Cause::SnoopRead));
        assert!(!transition_legal(Invalid, Invalid, Cause::Evict));
    }

    #[test]
    fn auditor_catches_forced_illegal_transition() {
        let mut h = hub(2, true);
        h.read(0, Addr(0x5000)); // E
        let idx = h.l1[0].find(0x5000 >> 6).unwrap();
        // Force a bogus transition through the checked setter.
        h.set_state_checked(0, idx, MesiState::Exclusive, Cause::Upgrade);
        assert_eq!(h.violations.len(), 1);
        assert!(h.violations[0].contains("illegal MESI transition E→E"));
    }

    #[test]
    fn auditor_catches_swmr_violation() {
        let mut h = hub(2, true);
        h.read(0, Addr(0x6000));
        h.read(1, Addr(0x6000)); // both Shared
                                 // Corrupt: promote both to Modified behind the protocol's back.
        for core in 0..2 {
            let idx = h.l1[core].find(0x6000 >> 6).unwrap();
            h.l1[core].states[idx] = MesiState::Modified;
        }
        h.check_swmr(0x6000 >> 6);
        assert!(h.violations.iter().any(|v| v.contains("SWMR violated")));
    }

    #[test]
    fn two_cores_disjoint_work_halts_and_merges_memory() {
        // Each core fills a disjoint slice of a shared page; the final
        // shared memory must contain both halves.
        let p0 = asm("li x1, 0x2000\nli x2, 0\nli x3, 8\n\
                      loop: sd x2, 0(x1)\naddi x1, x1, 8\naddi x2, x2, 1\n\
                      blt x2, x3, loop\nhalt");
        let p1 = asm("li x1, 0x2100\nli x2, 100\nli x3, 108\n\
                      loop: sd x2, 0(x1)\naddi x1, x1, 8\naddi x2, x2, 1\n\
                      blt x2, x3, loop\nhalt");
        let p0 = p0.with_data(Addr(0x2000), vec![0u8; 512]);
        let config = CoreConfig::config2();
        let line = config.l1d.line_bytes;
        let r = run_multicore(
            &[&p0, &p1],
            &config,
            coherent_policies(2, line),
            &MultiCoreOptions {
                audit: true,
                ..MultiCoreOptions::default()
            },
        )
        .expect("halts");
        assert!(r.cores.iter().all(|c| c.result.halted));
        assert!(
            r.coherence_violations.is_empty(),
            "{:?}",
            r.coherence_violations
        );
        for c in &r.cores {
            assert!(
                c.result.audit.as_ref().expect("audited").is_clean(),
                "{}",
                c.result.audit.as_ref().unwrap().render()
            );
        }
        assert!(r.bus.invals_sent > 0, "cross-line traffic on a shared page");
        assert!(r.cycles > 0);
    }

    #[test]
    fn racing_writers_to_one_line_stay_coherent() {
        // Both cores hammer the same line, each storing its *changing* loop
        // counter into its own slot while reading the other's: every remote
        // store commit makes the in-flight speculative loads stale, forcing
        // coherence replays whose re-issued loads demote the remote M copy —
        // sustained BusRd/BusUpgr ping-pong. Every committed load must still
        // read the value memory holds at its commit point (the core panics
        // otherwise), and the MESI auditor must stay clean.
        let src = |own: u64, other: u64| {
            format!(
                "li x1, {own:#x}\nli x5, {other:#x}\nli x3, 0\nli x4, 400\n\
                 loop: sd x3, 0(x1)\nld x6, 0(x5)\nadd x7, x7, x6\naddi x3, x3, 1\n\
                 blt x3, x4, loop\nhalt"
            )
        };
        let p0 = asm(&src(0x2000, 0x2008)).with_data(Addr(0x2000), vec![0u8; 64]);
        let p1 = asm(&src(0x2008, 0x2000));
        let config = CoreConfig::config2();
        let line = config.l1d.line_bytes;
        let r = run_multicore(
            &[&p0, &p1],
            &config,
            coherent_policies(2, line),
            &MultiCoreOptions {
                audit: true,
                seed: 3,
                ..MultiCoreOptions::default()
            },
        )
        .expect("halts");
        assert!(
            r.coherence_violations.is_empty(),
            "{:?}",
            r.coherence_violations
        );
        assert!(
            r.bus.bus_upgrades + r.bus.bus_read_x > 10,
            "line ping-pong expected, got {:?}",
            r.bus
        );
        // Both cores' final slot values must be in shared memory.
        assert_eq!(r.cores.len(), 2);
        for c in &r.cores {
            assert!(c.result.halted);
            assert!(
                c.result.audit.as_ref().expect("audited").is_clean(),
                "{}",
                c.result.audit.as_ref().unwrap().render()
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let p0 = asm("li x1, 0x2000\nli x2, 7\nsw x2, 0(x1)\nlw x3, 0(x1)\nhalt")
            .with_data(Addr(0x2000), vec![0u8; 64]);
        let p1 = asm("li x1, 0x2000\nlw x3, 0(x1)\nsw x3, 4(x1)\nhalt");
        let config = CoreConfig::config2();
        let line = config.l1d.line_bytes;
        let opts = MultiCoreOptions {
            seed: 42,
            audit: false,
            ..MultiCoreOptions::default()
        };
        let run = || {
            run_multicore(&[&p0, &p1], &config, coherent_policies(2, line), &opts).expect("halts")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.mem_checksum, b.mem_checksum);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.bus, b.bus);
        for (ca, cb) in a.cores.iter().zip(&b.cores) {
            assert_eq!(ca.int_regs, cb.int_regs);
            assert_eq!(ca.result.checksum, cb.result.checksum);
            assert_eq!(ca.result.stats.cycles, cb.result.stats.cycles);
        }
    }

    #[test]
    fn different_seeds_change_interleaving() {
        // Not a hard guarantee for every kernel, but for a racy kernel a
        // different skew should at least change the cycle picture.
        let p0 = asm("li x1, 0x2000\nli x2, 1\nsw x2, 0(x1)\nsw x2, 4(x1)\nhalt")
            .with_data(Addr(0x2000), vec![0u8; 64]);
        let p1 = asm("li x1, 0x2000\nlw x20, 4(x1)\nlw x21, 0(x1)\nhalt");
        let config = CoreConfig::config2();
        let line = config.l1d.line_bytes;
        let mut cycles = std::collections::BTreeSet::new();
        for seed in 0..8 {
            let r = run_multicore(
                &[&p0, &p1],
                &config,
                coherent_policies(2, line),
                &MultiCoreOptions {
                    seed,
                    audit: false,
                    ..MultiCoreOptions::default()
                },
            )
            .expect("halts");
            cycles.insert(r.cores[1].result.stats.cycles);
        }
        assert!(cycles.len() > 1, "skews should vary the interleaving");
    }

    #[test]
    fn single_core_multicore_run_matches_plain_simulator() {
        // A 1-core "multi-core" run has no coherence traffic; its committed
        // work must match the plain simulator architecturally.
        let src = "li x1, 0x2000\nli x2, 0\nli x3, 20\n\
                   loop: sd x2, 0(x1)\nld x4, 0(x1)\nadd x5, x5, x4\n\
                   addi x2, x2, 1\nblt x2, x3, loop\nhalt";
        let p = asm(src).with_data(Addr(0x2000), vec![0u8; 64]);
        let config = CoreConfig::config2();
        let line = config.l1d.line_bytes;
        let r = run_multicore(
            &[&p],
            &config,
            coherent_policies(1, line),
            &MultiCoreOptions {
                max_skew: 0,
                audit: false,
                ..MultiCoreOptions::default()
            },
        )
        .expect("halts");
        let mut sim = Simulator::new(&p, config.clone(), Box::new(BaselinePolicy::new()));
        let plain = sim.run(SimOptions::default()).expect("halts");
        assert_eq!(r.cores[0].result.stats.committed, plain.stats.committed);
        assert_eq!(r.cores[0].result.checksum, plain.checksum);
        assert_eq!(r.bus.invals_sent, 0);
    }
}
