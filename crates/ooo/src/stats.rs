//! Simulation statistics, including the structure-access counters the
//! energy model consumes and the checking-window / false-replay statistics
//! the paper's tables report.

/// Per-structure access counters. The energy model (crate `dmdc-energy`)
/// multiplies these by per-event energies derived from structure geometry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounters {
    /// Associative searches of the load queue (CAM match across all entries).
    pub lq_cam_searches: u64,
    /// Load-queue entry allocations/writes (both CAM and FIFO designs).
    pub lq_writes: u64,
    /// Associative searches of the store queue (forwarding CAM).
    pub sq_cam_searches: u64,
    /// Store-queue entry writes.
    pub sq_writes: u64,
    /// Checking-table indexed reads.
    pub table_reads: u64,
    /// Checking-table indexed writes.
    pub table_writes: u64,
    /// Checking-table flash clears (whole-table events).
    pub table_clears: u64,
    /// YLA register reads.
    pub yla_reads: u64,
    /// YLA register writes.
    pub yla_writes: u64,
    /// Bloom-filter reads.
    pub bloom_reads: u64,
    /// Bloom-filter writes (increments/decrements).
    pub bloom_writes: u64,
    /// Associative checking-queue searches.
    pub cq_searches: u64,
    /// Associative checking-queue writes.
    pub cq_writes: u64,
}

/// Classification of a replay triggered by the dependence-checking logic.
///
/// `True*` replays repair an actual memory-order violation (the load had
/// returned a stale value). The `False*` variants are the paper's Table 3
/// taxonomy: replays caused by DMDC's address (hashing) or timing
/// approximations, split by whether the load issued before or after the
/// store resolved, and — for loads that issued after — whether the load fell
/// in the store's own checking window (X) or was only checked because
/// windows merged (Y).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayKind {
    /// The load's value was genuinely stale: a required replay.
    TrueViolation,
    /// False: same (sub-quad-word) address, load issued after the store
    /// resolved, load inside the store's own checking window (Table 3 "X").
    FalseAddrMatchX,
    /// False: same address, load issued after the store resolved, load only
    /// checked because checking windows merged (Table 3 "Y").
    FalseAddrMatchY,
    /// False: different address hashed to the same table entry, load issued
    /// before the store resolved.
    FalseHashBefore,
    /// False: hash conflict, load issued after the store, inside the store's
    /// own window (X).
    FalseHashX,
    /// False: hash conflict, load issued after the store, merged windows (Y).
    FalseHashY,
    /// Replay forced by coherence handling (invalidation WRT promotion or
    /// checking-queue overflow); not part of the Table 3 taxonomy.
    Coherence,
}

/// Aggregated replay counts by [`ReplayKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayBreakdown {
    /// True violations repaired.
    pub true_violation: u64,
    /// See [`ReplayKind::FalseAddrMatchX`].
    pub false_addr_x: u64,
    /// See [`ReplayKind::FalseAddrMatchY`].
    pub false_addr_y: u64,
    /// See [`ReplayKind::FalseHashBefore`].
    pub false_hash_before: u64,
    /// See [`ReplayKind::FalseHashX`].
    pub false_hash_x: u64,
    /// See [`ReplayKind::FalseHashY`].
    pub false_hash_y: u64,
    /// See [`ReplayKind::Coherence`].
    pub coherence: u64,
}

impl ReplayBreakdown {
    /// Records one replay of the given kind.
    pub fn record(&mut self, kind: ReplayKind) {
        match kind {
            ReplayKind::TrueViolation => self.true_violation += 1,
            ReplayKind::FalseAddrMatchX => self.false_addr_x += 1,
            ReplayKind::FalseAddrMatchY => self.false_addr_y += 1,
            ReplayKind::FalseHashBefore => self.false_hash_before += 1,
            ReplayKind::FalseHashX => self.false_hash_x += 1,
            ReplayKind::FalseHashY => self.false_hash_y += 1,
            ReplayKind::Coherence => self.coherence += 1,
        }
    }

    /// Total false replays (everything except true violations).
    pub fn false_total(&self) -> u64 {
        self.false_addr_x
            + self.false_addr_y
            + self.false_hash_before
            + self.false_hash_x
            + self.false_hash_y
            + self.coherence
    }

    /// Total replays of any kind.
    pub fn total(&self) -> u64 {
        self.true_violation + self.false_total()
    }
}

/// Statistics a dependence policy accumulates through its hooks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyStats {
    /// Stores classified safe at resolve time (LQ search / checking skipped).
    pub safe_stores: u64,
    /// Stores classified unsafe (search or delayed checking required).
    pub unsafe_stores: u64,
    /// Loads marked safe at issue (all older store addresses resolved).
    pub safe_loads: u64,
    /// Loads not safe at issue.
    pub unsafe_loads: u64,
    /// Replay classification.
    pub replays: ReplayBreakdown,
    /// Cycles with DMDC checking mode active.
    pub checking_mode_cycles: u64,
    /// Number of checking windows (activation→termination periods).
    pub checking_windows: u64,
    /// Windows that contained exactly one unsafe store.
    pub single_store_windows: u64,
    /// Total committed instructions inside checking windows.
    pub window_instructions: u64,
    /// Total committed loads inside checking windows.
    pub window_loads: u64,
    /// Committed loads inside windows that were safe loads.
    pub window_safe_loads: u64,
    /// Unsafe stores committed inside checking windows (>= windows).
    pub window_unsafe_stores: u64,
    /// External invalidations delivered to the policy.
    pub invalidations: u64,
    /// Loads whose commit-time check was skipped thanks to the safe-load bit.
    pub safe_load_check_bypasses: u64,
}

impl PolicyStats {
    /// Fraction of stores filtered (safe) out of all resolved stores.
    pub fn store_filter_rate(&self) -> f64 {
        let total = self.safe_stores + self.unsafe_stores;
        if total == 0 {
            0.0
        } else {
            self.safe_stores as f64 / total as f64
        }
    }

    /// Fraction of loads that were safe at issue.
    pub fn safe_load_rate(&self) -> f64 {
        let total = self.safe_loads + self.unsafe_loads;
        if total == 0 {
            0.0
        } else {
            self.safe_loads as f64 / total as f64
        }
    }
}

/// Encodes a non-negative `f64` as Q32.32 fixed point so fractional
/// sampling estimates ride the all-`u64` stats export unchanged. The
/// ~2.3e-10 quantum is far below any confidence interval this crate
/// reports; values are clamped to the representable range.
pub fn to_q32(v: f64) -> u64 {
    let scaled = v * (1u64 << 32) as f64;
    if scaled <= 0.0 {
        0
    } else if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        scaled as u64
    }
}

/// Inverse of [`to_q32`].
pub fn from_q32(v: u64) -> f64 {
    v as f64 / (1u64 << 32) as f64
}

/// Population estimates from a statistically sampled run (SMARTS-style
/// fast-forward + detailed windows). All-zero for an exact run.
///
/// Fractional estimates are stored Q32.32-encoded (see [`to_q32`]) so the
/// struct flattens through the same fixed-order `u64` export manifest as
/// every other counter; use the accessor methods for `f64` views. Each
/// `*_ci` field is the half-width of a ~95% two-sided confidence interval
/// computed from the per-window standard error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplingStats {
    /// Detailed measurement windows taken (0 = exact, unsampled run).
    pub windows: u64,
    /// Population size: total instructions the full program retires.
    pub population: u64,
    /// Instructions committed inside measurement windows (the sample).
    pub sampled_committed: u64,
    /// Mean per-window IPC, Q32.32.
    pub ipc_mean_q: u64,
    /// IPC confidence half-width, Q32.32.
    pub ipc_ci_q: u64,
    /// Mean per-window replays per million committed instructions, Q32.32.
    pub replays_per_m_mean_q: u64,
    /// Replays-per-million confidence half-width, Q32.32.
    pub replays_per_m_ci_q: u64,
    /// Mean per-window store filter rate in [0,1], Q32.32.
    pub filter_rate_mean_q: u64,
    /// Store-filter-rate confidence half-width, Q32.32.
    pub filter_rate_ci_q: u64,
    /// Mean per-window safe-load rate in [0,1], Q32.32.
    pub safe_load_rate_mean_q: u64,
    /// Safe-load-rate confidence half-width, Q32.32.
    pub safe_load_rate_ci_q: u64,
}

impl SamplingStats {
    /// Mean per-window IPC.
    pub fn ipc_mean(&self) -> f64 {
        from_q32(self.ipc_mean_q)
    }

    /// IPC confidence half-width.
    pub fn ipc_ci(&self) -> f64 {
        from_q32(self.ipc_ci_q)
    }

    /// Mean per-window replays per million committed instructions.
    pub fn replays_per_m_mean(&self) -> f64 {
        from_q32(self.replays_per_m_mean_q)
    }

    /// Replays-per-million confidence half-width.
    pub fn replays_per_m_ci(&self) -> f64 {
        from_q32(self.replays_per_m_ci_q)
    }

    /// Mean per-window store filter rate.
    pub fn filter_rate_mean(&self) -> f64 {
        from_q32(self.filter_rate_mean_q)
    }

    /// Store-filter-rate confidence half-width.
    pub fn filter_rate_ci(&self) -> f64 {
        from_q32(self.filter_rate_ci_q)
    }

    /// Mean per-window safe-load rate.
    pub fn safe_load_rate_mean(&self) -> f64 {
        from_q32(self.safe_load_rate_mean_q)
    }

    /// Safe-load-rate confidence half-width.
    pub fn safe_load_rate_ci(&self) -> f64 {
        from_q32(self.safe_load_rate_ci_q)
    }
}

/// Cache hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero if never accessed.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Everything a simulation run reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed instructions (including the final halt).
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed conditional branches.
    pub branches: u64,
    /// Mispredicted committed conditional branches plus mispredicted
    /// indirect-jump targets.
    pub mispredicts: u64,
    /// Pipeline squashes due to dependence replays.
    pub replay_squashes: u64,
    /// Loads rejected by the store queue (unforwardable overlap) and retried.
    pub load_rejections: u64,
    /// Loads that issued older than every in-flight store (the oldest-store
    /// age register of paper §3 could have skipped their SQ search).
    pub sq_filterable_loads: u64,
    /// Instructions fetched (including wrong-path).
    pub fetched: u64,
    /// Instructions squashed after renaming (wrong-path or replay shadow).
    pub squashed: u64,
    /// Structure-access counters for the energy model.
    pub energy: EnergyCounters,
    /// Policy-level statistics.
    pub policy: PolicyStats,
    /// L1I cache behaviour.
    pub l1i: CacheStats,
    /// L1D cache behaviour.
    pub l1d: CacheStats,
    /// L2 cache behaviour.
    pub l2: CacheStats,
    /// Simulated cycles the event-horizon loop fast-forwarded over instead
    /// of executing. Purely a measure of host-side work saved: the
    /// simulated machine's behaviour is bit-identical with skipping off.
    pub skipped_cycles: u64,
    /// Number of fast-forward jumps taken.
    pub fast_forwards: u64,
    /// Sampling estimates and confidence intervals (all-zero when exact).
    pub sampling: SamplingStats,
}

/// The single manifest of every `SimStats` counter, in export order.
/// `export_values`, `from_export_values` and `EXPORT_LEN` all expand from
/// this list, so adding a field here updates all three together; a field
/// added to a struct but not to this list is caught by the round-trip
/// equality test (the import side would leave it at its default).
macro_rules! export_field_list {
    ($cb:ident $(, $args:tt)*) => {
        $cb!(
            ($($args),*);
            cycles, committed, loads, stores, branches, mispredicts,
            replay_squashes, load_rejections, sq_filterable_loads, fetched,
            squashed, skipped_cycles, fast_forwards,
            energy.lq_cam_searches, energy.lq_writes, energy.sq_cam_searches,
            energy.sq_writes, energy.table_reads, energy.table_writes,
            energy.table_clears, energy.yla_reads, energy.yla_writes,
            energy.bloom_reads, energy.bloom_writes, energy.cq_searches,
            energy.cq_writes,
            policy.safe_stores, policy.unsafe_stores, policy.safe_loads,
            policy.unsafe_loads,
            policy.replays.true_violation, policy.replays.false_addr_x,
            policy.replays.false_addr_y, policy.replays.false_hash_before,
            policy.replays.false_hash_x, policy.replays.false_hash_y,
            policy.replays.coherence,
            policy.checking_mode_cycles, policy.checking_windows,
            policy.single_store_windows, policy.window_instructions,
            policy.window_loads, policy.window_safe_loads,
            policy.window_unsafe_stores, policy.invalidations,
            policy.safe_load_check_bypasses,
            l1i.hits, l1i.misses, l1d.hits, l1d.misses, l2.hits, l2.misses,
            sampling.windows, sampling.population, sampling.sampled_committed,
            sampling.ipc_mean_q, sampling.ipc_ci_q,
            sampling.replays_per_m_mean_q, sampling.replays_per_m_ci_q,
            sampling.filter_rate_mean_q, sampling.filter_rate_ci_q,
            sampling.safe_load_rate_mean_q, sampling.safe_load_rate_ci_q
        )
    };
}

macro_rules! export_count_body {
    ((); $($($p:ident).+),* $(,)?) => {
        [$(stringify!($($p).+)),*].len()
    };
}

macro_rules! export_values_body {
    (($s:expr); $($($p:ident).+),* $(,)?) => {
        vec![$($s.$($p).+),*]
    };
}

macro_rules! import_values_body {
    (($s:expr, $it:expr); $($($p:ident).+),* $(,)?) => {
        $( $s.$($p).+ = $it.next().expect("length checked above"); )*
    };
}

impl SimStats {
    /// Number of counters [`SimStats::export_values`] flattens to.
    pub const EXPORT_LEN: usize = export_field_list!(export_count_body);

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Events per million committed instructions.
    pub fn per_million(&self, events: u64) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            events as f64 * 1.0e6 / self.committed as f64
        }
    }

    /// Whether these stats carry sampled population estimates rather than
    /// exact whole-program measurements.
    pub fn is_sampled(&self) -> bool {
        self.sampling.windows > 0
    }

    /// Fraction of simulated cycles the loop skipped rather than executed.
    pub fn skip_ratio(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / self.cycles as f64
        }
    }

    /// Flattens every counter into a fixed-order `Vec<u64>` for external
    /// serialization (the experiment layer's content-addressed cell
    /// cache). [`SimStats::from_export_values`] is the exact inverse; the
    /// shared field manifest lives in one macro so the two cannot drift.
    pub fn export_values(&self) -> Vec<u64> {
        export_field_list!(export_values_body, self)
    }

    /// Rebuilds a `SimStats` from [`SimStats::export_values`] output.
    /// Returns `None` unless `values` has exactly [`SimStats::EXPORT_LEN`]
    /// entries — a length mismatch means the record came from a build
    /// with a different stats schema.
    pub fn from_export_values(values: &[u64]) -> Option<SimStats> {
        if values.len() != SimStats::EXPORT_LEN {
            return None;
        }
        let mut it = values.iter().copied();
        let mut s = SimStats::default();
        export_field_list!(import_values_body, s, it);
        Some(s)
    }

    /// A copy with the host-side speed counters (`skipped_cycles`,
    /// `fast_forwards`) zeroed, for whole-struct equality checks between
    /// event-driven and forced-per-cycle runs: those two counters describe
    /// how the simulator ran, not what the simulated machine did.
    pub fn with_skip_counters_zeroed(&self) -> SimStats {
        SimStats {
            skipped_cycles: 0,
            fast_forwards: 0,
            ..self.clone()
        }
    }
}

/// Number of profiled pipeline stages (see [`PROFILE_STAGE_NAMES`]).
pub const PROFILE_STAGES: usize = 5;

/// Names of the profiled stages, in per-cycle execution order.
pub const PROFILE_STAGE_NAMES: [&str; PROFILE_STAGES] =
    ["commit", "writeback", "issue", "dispatch", "fetch"];

/// Per-stage wall-clock/activity breakdown of one `Simulator::run`,
/// collected when `SimOptions::profile` is set.
///
/// Host nanoseconds are measured around each stage call of each *executed*
/// cycle; fast-forwarded cycles execute no stages (that is the point) and
/// show up as `SimStats::skipped_cycles` instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Host nanoseconds spent inside each stage, in
    /// [`PROFILE_STAGE_NAMES`] order.
    pub stage_nanos: [u64; PROFILE_STAGES],
    /// Executed cycles in which the stage did observable work.
    pub stage_active_cycles: [u64; PROFILE_STAGES],
    /// Cycles the loop actually executed (simulated minus skipped).
    pub executed_cycles: u64,
}

impl SimProfile {
    /// Multi-line human-readable report, combining the stage breakdown
    /// with the run's skip counters.
    pub fn render(&self, stats: &SimStats) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} cycles simulated, {} executed, {} skipped ({:.1}%) in {} fast-forwards",
            stats.cycles,
            self.executed_cycles,
            stats.skipped_cycles,
            stats.skip_ratio() * 100.0,
            stats.fast_forwards,
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>12} {:>14}",
            "stage", "time(us)", "active-cycles"
        );
        for (i, name) in PROFILE_STAGE_NAMES.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:<10} {:>12.1} {:>14}",
                name,
                self.stage_nanos[i] as f64 / 1000.0,
                self.stage_active_cycles[i],
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_breakdown_records_and_totals() {
        let mut b = ReplayBreakdown::default();
        b.record(ReplayKind::TrueViolation);
        b.record(ReplayKind::FalseAddrMatchX);
        b.record(ReplayKind::FalseAddrMatchY);
        b.record(ReplayKind::FalseHashBefore);
        b.record(ReplayKind::FalseHashX);
        b.record(ReplayKind::FalseHashY);
        b.record(ReplayKind::Coherence);
        assert_eq!(b.false_total(), 6);
        assert_eq!(b.total(), 7);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let p = PolicyStats::default();
        assert_eq!(p.store_filter_rate(), 0.0);
        assert_eq!(p.safe_load_rate(), 0.0);
        let c = CacheStats::default();
        assert_eq!(c.miss_rate(), 0.0);
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.per_million(5), 0.0);
    }

    #[test]
    fn export_roundtrip_is_a_bijection() {
        // Distinct values per slot: any position mix-up or duplicate field
        // in the manifest breaks the round trip.
        let values: Vec<u64> = (1..=SimStats::EXPORT_LEN as u64).collect();
        let stats = SimStats::from_export_values(&values).expect("length matches");
        assert_eq!(stats.export_values(), values);
        assert!(SimStats::from_export_values(&values[1..]).is_none());
        assert_ne!(stats, SimStats::default());
    }

    #[test]
    fn q32_roundtrip_is_tight_and_clamped() {
        for v in [0.0, 1e-6, 0.25, 1.0, 2.5, 1234.5678, 1.0e6] {
            assert!((from_q32(to_q32(v)) - v).abs() < 1e-9, "{v}");
        }
        assert_eq!(to_q32(-1.0), 0);
        assert_eq!(to_q32(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn sampling_accessors_decode_q32_fields() {
        let s = SamplingStats {
            windows: 20,
            population: 1_000_000,
            sampled_committed: 30_000,
            ipc_mean_q: to_q32(1.75),
            ipc_ci_q: to_q32(0.05),
            replays_per_m_mean_q: to_q32(320.5),
            replays_per_m_ci_q: to_q32(12.25),
            filter_rate_mean_q: to_q32(0.93),
            filter_rate_ci_q: to_q32(0.01),
            safe_load_rate_mean_q: to_q32(0.41),
            safe_load_rate_ci_q: to_q32(0.02),
        };
        assert!((s.ipc_mean() - 1.75).abs() < 1e-9);
        assert!((s.ipc_ci() - 0.05).abs() < 1e-9);
        assert!((s.replays_per_m_mean() - 320.5).abs() < 1e-9);
        assert!((s.replays_per_m_ci() - 12.25).abs() < 1e-9);
        assert!((s.filter_rate_mean() - 0.93).abs() < 1e-9);
        assert!((s.safe_load_rate_ci() - 0.02).abs() < 1e-9);
        let stats = SimStats {
            sampling: s,
            ..Default::default()
        };
        assert!(stats.is_sampled());
        assert!(!SimStats::default().is_sampled());
    }

    #[test]
    fn rates_compute() {
        let p = PolicyStats {
            safe_stores: 95,
            unsafe_stores: 5,
            safe_loads: 8,
            unsafe_loads: 2,
            ..Default::default()
        };
        assert!((p.store_filter_rate() - 0.95).abs() < 1e-12);
        assert!((p.safe_load_rate() - 0.8).abs() < 1e-12);
        let s = SimStats {
            cycles: 100,
            committed: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.per_million(1) - 4000.0).abs() < 1e-9);
        let c = CacheStats { hits: 3, misses: 1 };
        assert!((c.miss_rate() - 0.25).abs() < 1e-12);
    }
}
