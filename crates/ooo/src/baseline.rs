//! The conventional CAM-based load-queue policy (paper §2): every resolving
//! store searches the LQ associatively for younger, already-issued loads to
//! an overlapping address and replays the oldest match. With coherence
//! enabled, external invalidations also search the LQ to mark matching
//! loads, and every issuing load searches for younger marked same-line
//! entries (the POWER4 scheme \[22\]).

use dmdc_types::{Age, MemSpan};

use crate::lsq::{
    CheckOutcome, CommitInfo, CommitKind, LoadQueue, MemDepPolicy, PolicyCtx, StoreResolution,
};
use crate::stats::ReplayKind;

/// The conventional associative load-queue design.
///
/// # Examples
///
/// ```
/// use dmdc_ooo::{BaselinePolicy, MemDepPolicy};
///
/// let p = BaselinePolicy::new();
/// assert!(p.needs_associative_lq());
/// assert_eq!(p.name(), "baseline");
/// ```
#[derive(Debug, Clone, Default)]
pub struct BaselinePolicy {
    /// Line size used for invalidation matching (set when coherence is on).
    coherence_line_bytes: Option<u64>,
    /// Invalidations that arrived while coherence was *not* configured — a
    /// wiring bug, surfaced through [`MemDepPolicy::audit_self`] as a
    /// structured `policy-state` violation rather than a panic, so the
    /// panic-isolation harness classifies it instead of unwinding.
    unconfigured_invalidations: u64,
}

impl BaselinePolicy {
    /// A baseline without coherence traffic handling (the paper's default
    /// baseline, §6.2.4).
    pub fn new() -> BaselinePolicy {
        BaselinePolicy::default()
    }

    /// A baseline that also enforces load-load ordering against external
    /// invalidations at the given line granularity.
    pub fn with_coherence(line_bytes: u64) -> BaselinePolicy {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        BaselinePolicy {
            coherence_line_bytes: Some(line_bytes),
            unconfigured_invalidations: 0,
        }
    }
}

/// Searches `lq` for the oldest entry younger than `age` that has issued to
/// a span overlapping `span`. Shared by the baseline and the YLA-filtered
/// designs (which perform the identical search when the filter misses).
pub fn search_lq_for_premature_loads(lq: &LoadQueue, age: Age, span: MemSpan) -> Option<Age> {
    lq.iter()
        .filter(|e| e.age.is_younger_than(age) && e.issued)
        .find(|e| e.span.is_some_and(|s| s.overlaps(span)))
        .map(|e| e.age)
}

impl MemDepPolicy for BaselinePolicy {
    fn name(&self) -> &str {
        "baseline"
    }

    fn on_load_issue(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        safe: bool,
        lq: &mut LoadQueue,
    ) -> Option<Age> {
        if safe {
            ctx.stats.safe_loads += 1;
        } else {
            ctx.stats.unsafe_loads += 1;
        }
        let line_bytes = self.coherence_line_bytes?;
        // POWER4-style load-load ordering: every load searches the LQ for a
        // younger, issued, invalidation-marked load to the same line.
        ctx.energy.lq_cam_searches += 1;
        let line = span.addr.cache_line(line_bytes);
        let replay = lq
            .iter()
            .filter(|e| e.age.is_younger_than(age) && e.issued && e.inv_marked)
            .find(|e| {
                e.span
                    .is_some_and(|s| s.addr.cache_line(line_bytes) == line)
            })
            .map(|e| e.age);
        if replay.is_some() {
            ctx.stats.replays.record(ReplayKind::Coherence);
        }
        replay
    }

    fn on_store_resolve(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        lq: &LoadQueue,
    ) -> StoreResolution {
        // The conventional design searches unconditionally.
        ctx.energy.lq_cam_searches += 1;
        ctx.stats.unsafe_stores += 1;
        let replay_from = search_lq_for_premature_loads(lq, age, span);
        if replay_from.is_some() {
            // The baseline cannot tell a value-changing violation from a
            // harmless overlap; it conservatively replays either way, so we
            // account these as true violations (they are the design's raison
            // d'être and are rare either way).
            ctx.stats.replays.record(ReplayKind::TrueViolation);
        }
        StoreResolution {
            safe: false,
            replay_from,
        }
    }

    fn on_commit(&mut self, _ctx: &mut PolicyCtx<'_>, info: &CommitInfo) -> CheckOutcome {
        if info.kind == CommitKind::Load {
            debug_assert!(
                info.value_correct,
                "baseline let a stale load (age {}) reach commit",
                info.age
            );
        }
        CheckOutcome::Ok
    }

    fn on_squash(&mut self, _ctx: &mut PolicyCtx<'_>, _youngest_surviving: Age) {}

    fn on_invalidation(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        line_addr: dmdc_types::Addr,
        line_bytes: u64,
        lq: &mut LoadQueue,
    ) -> Option<Age> {
        // An invalidation reaching a coherence-less baseline is a wiring
        // bug, but not one worth crashing a whole experiment sweep over:
        // count it for audit_self and fall back to the bus-provided line
        // size so load-load ordering stays enforced either way.
        let line_bytes = self.coherence_line_bytes.unwrap_or_else(|| {
            self.unconfigured_invalidations += 1;
            line_bytes
        });
        ctx.stats.invalidations += 1;
        // The invalidation searches the whole LQ and marks matching loads.
        ctx.energy.lq_cam_searches += 1;
        let target = line_addr.cache_line(line_bytes);
        for e in lq.iter_mut() {
            if e.issued
                && e.span
                    .is_some_and(|s| s.addr.cache_line(line_bytes) == target)
            {
                e.inv_marked = true;
            }
        }
        None
    }

    fn audit_self(&self, _lq: &LoadQueue) -> Option<String> {
        (self.unconfigured_invalidations > 0).then(|| {
            format!(
                "{} invalidations delivered to a baseline built without \
                 coherence support",
                self.unconfigured_invalidations
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{EnergyCounters, PolicyStats};
    use dmdc_types::{AccessSize, Addr, Cycle};

    fn span(addr: u64, bytes: u64) -> MemSpan {
        MemSpan::new(Addr(addr), AccessSize::from_bytes(bytes).unwrap())
    }

    fn ctx<'a>(e: &'a mut EnergyCounters, s: &'a mut PolicyStats) -> PolicyCtx<'a> {
        PolicyCtx {
            cycle: Cycle(0),
            energy: e,
            stats: s,
        }
    }

    fn issued_lq(entries: &[(u64, u64, u64)]) -> LoadQueue {
        // (age, addr, bytes)
        let mut lq = LoadQueue::new(16);
        for &(age, addr, bytes) in entries {
            lq.allocate(Age(age));
            let e = lq.entry_mut(Age(age)).unwrap();
            e.issued = true;
            e.span = Some(span(addr, bytes));
            e.issue_cycle = Some(Cycle(1));
        }
        lq
    }

    #[test]
    fn store_resolve_finds_oldest_younger_overlap() {
        let lq = issued_lq(&[(2, 0x100, 4), (5, 0x200, 4), (8, 0x200, 4)]);
        let mut e = EnergyCounters::default();
        let mut s = PolicyStats::default();
        let mut p = BaselinePolicy::new();
        let r = p.on_store_resolve(&mut ctx(&mut e, &mut s), Age(3), span(0x200, 4), &lq);
        assert_eq!(
            r.replay_from,
            Some(Age(5)),
            "oldest younger overlapping load"
        );
        assert!(!r.safe);
        assert_eq!(e.lq_cam_searches, 1);
        assert_eq!(s.replays.true_violation, 1);
    }

    #[test]
    fn store_resolve_ignores_older_and_unissued() {
        let mut lq = issued_lq(&[(2, 0x200, 4)]);
        lq.allocate(Age(9)); // not issued
        let mut e = EnergyCounters::default();
        let mut s = PolicyStats::default();
        let mut p = BaselinePolicy::new();
        let r = p.on_store_resolve(&mut ctx(&mut e, &mut s), Age(3), span(0x200, 4), &lq);
        assert_eq!(r.replay_from, None);
    }

    #[test]
    fn partial_overlap_still_replays() {
        let lq = issued_lq(&[(5, 0x102, 4)]);
        let mut e = EnergyCounters::default();
        let mut s = PolicyStats::default();
        let mut p = BaselinePolicy::new();
        let r = p.on_store_resolve(&mut ctx(&mut e, &mut s), Age(3), span(0x100, 4), &lq);
        assert_eq!(r.replay_from, Some(Age(5)));
    }

    #[test]
    fn load_issue_without_coherence_does_nothing() {
        let mut lq = issued_lq(&[(5, 0x100, 4)]);
        let mut e = EnergyCounters::default();
        let mut s = PolicyStats::default();
        let mut p = BaselinePolicy::new();
        let r = p.on_load_issue(
            &mut ctx(&mut e, &mut s),
            Age(2),
            span(0x100, 4),
            true,
            &mut lq,
        );
        assert_eq!(r, None);
        assert_eq!(e.lq_cam_searches, 0);
        assert_eq!(s.safe_loads, 1);
    }

    #[test]
    fn coherence_marks_and_replays_younger_load() {
        let mut lq = issued_lq(&[(5, 0x1040, 4), (9, 0x2000, 4)]);
        let mut e = EnergyCounters::default();
        let mut s = PolicyStats::default();
        let mut p = BaselinePolicy::with_coherence(128);
        // Invalidation for the line containing 0x1040.
        let r = p.on_invalidation(&mut ctx(&mut e, &mut s), Addr(0x1000), 128, &mut lq);
        assert_eq!(r, None);
        assert!(lq.entry(Age(5)).unwrap().inv_marked);
        assert!(!lq.entry(Age(9)).unwrap().inv_marked);
        // Now an *older* load to the same line issues: the write-serialization
        // sequence of §2 — replay from the younger marked load.
        let r = p.on_load_issue(
            &mut ctx(&mut e, &mut s),
            Age(3),
            span(0x1000, 8),
            false,
            &mut lq,
        );
        assert_eq!(r, Some(Age(5)));
        assert_eq!(s.replays.coherence, 1);
        // A load to a different line does not trip it.
        let r = p.on_load_issue(
            &mut ctx(&mut e, &mut s),
            Age(4),
            span(0x3000, 8),
            false,
            &mut lq,
        );
        assert_eq!(r, None);
    }

    #[test]
    fn invalidation_without_coherence_is_a_structured_audit_failure() {
        // A mis-wired invalidation must not panic: it still marks matching
        // loads (at the bus-provided line size) and audit_self reports it.
        let mut lq = issued_lq(&[(5, 0x1040, 4)]);
        let mut e = EnergyCounters::default();
        let mut s = PolicyStats::default();
        let mut p = BaselinePolicy::new();
        assert!(p.audit_self(&lq).is_none(), "clean before any misdelivery");
        let r = p.on_invalidation(&mut ctx(&mut e, &mut s), Addr(0x1000), 128, &mut lq);
        assert_eq!(r, None);
        assert!(lq.entry(Age(5)).unwrap().inv_marked, "still marks loads");
        let msg = p.audit_self(&lq).expect("misdelivery surfaces in audit");
        assert!(msg.contains("without coherence support"), "{msg}");
        assert!(msg.starts_with("1 invalidation"), "{msg}");
    }
}
