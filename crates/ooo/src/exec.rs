//! Dataflow execution semantics shared by the issue stage: computes an
//! instruction's result from its (physical-register) operand values.
//!
//! Memory instructions only compute their effective address here; the load
//! value path and store data capture live in the core, which owns memory
//! and the store queue.

use dmdc_isa::{fp_from_bits, fp_to_bits, sign_extend, Inst};
use dmdc_types::{AccessSize, Addr};

use crate::regs::RegValue;

/// The outcome of executing one instruction on its operand values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOutcome {
    /// Register result, if the instruction produces one (loads excluded —
    /// their value arrives from the memory path).
    pub result: Option<RegValue>,
    /// Effective address for memory instructions.
    pub ea: Option<Addr>,
    /// For control instructions: the actual next instruction index.
    pub next_pc: Option<u32>,
    /// For conditional branches: the actual direction.
    pub taken: Option<bool>,
}

/// Executes `inst` (fetched at `pc`) over `srcs`, the operand values in
/// [`Inst::sources`] order.
///
/// # Panics
///
/// Panics if the operand count or types do not match the instruction — a
/// rename-stage bug, not a runtime condition.
pub fn compute(inst: Inst, pc: u32, srcs: &[RegValue]) -> ExecOutcome {
    let mut out = ExecOutcome {
        result: None,
        ea: None,
        next_pc: None,
        taken: None,
    };
    match inst {
        Inst::Nop | Inst::Halt => {}
        Inst::Alu { op, .. } => {
            out.result = Some(RegValue::Int(op.eval(srcs[0].as_int(), srcs[1].as_int())));
        }
        Inst::AluImm { op, .. } => {
            out.result = Some(RegValue::Int(op.eval(srcs[0].as_int(), imm_ext(inst))));
        }
        Inst::Lui { imm, .. } => {
            out.result = Some(RegValue::Int(((imm as i64) << 16) as u64));
        }
        Inst::Load { offset, .. } | Inst::FLoad { offset, .. } => {
            out.ea = Some(Addr(srcs[0].as_int()).wrapping_offset(offset as i64));
        }
        Inst::Store { offset, .. } | Inst::FStore { offset, .. } => {
            // sources() order: [base, data]
            out.ea = Some(Addr(srcs[0].as_int()).wrapping_offset(offset as i64));
        }
        Inst::Fpu { op, .. } => {
            out.result = Some(RegValue::Fp(op.eval(srcs[0].as_fp(), srcs[1].as_fp())));
        }
        Inst::Fcmp { cond, .. } => {
            out.result = Some(RegValue::Int(
                cond.eval(srcs[0].as_fp(), srcs[1].as_fp()) as u64
            ));
        }
        Inst::IntToFp { .. } => {
            out.result = Some(RegValue::Fp(srcs[0].as_int() as i64 as f64));
        }
        Inst::FpToInt { .. } => {
            out.result = Some(RegValue::Int(dmdc_isa::fp_to_int(srcs[0].as_fp())));
        }
        Inst::Branch { cond, target, .. } => {
            let taken = cond.eval(srcs[0].as_int(), srcs[1].as_int());
            out.taken = Some(taken);
            out.next_pc = Some(if taken { target } else { pc + 1 });
        }
        Inst::Jal { target, .. } => {
            out.result = Some(RegValue::Int((pc + 1) as u64));
            out.next_pc = Some(target);
        }
        Inst::Jalr { .. } => {
            out.result = Some(RegValue::Int((pc + 1) as u64));
            out.next_pc = Some(srcs[0].as_int() as u32);
        }
    }
    out
}

fn imm_ext(inst: Inst) -> u64 {
    match inst {
        Inst::AluImm { imm, .. } => imm as i64 as u64,
        _ => unreachable!(),
    }
}

/// Converts a load's raw little-endian memory bytes into its register value
/// (sign/zero extension for integer loads, bit reinterpretation for FP).
pub fn load_value(inst: Inst, raw: u64) -> RegValue {
    match inst {
        Inst::Load { size, signed, .. } => {
            RegValue::Int(if signed { sign_extend(raw, size) } else { raw })
        }
        Inst::FLoad { size, .. } => RegValue::Fp(fp_from_bits(raw, size)),
        _ => panic!("load_value on a non-load"),
    }
}

/// Converts a store's data register value into raw little-endian memory
/// bytes (low `size` bytes valid).
pub fn store_raw(inst: Inst, data: RegValue) -> u64 {
    match inst {
        Inst::Store { size, .. } => data.as_int() & size_mask(size),
        Inst::FStore { size, .. } => fp_to_bits(data.as_fp(), size),
        _ => panic!("store_raw on a non-store"),
    }
}

/// A mask covering the low `size` bytes.
pub fn size_mask(size: AccessSize) -> u64 {
    match size {
        AccessSize::B8 => u64::MAX,
        s => (1u64 << (8 * s.bytes())) - 1,
    }
}

/// Extracts the bytes a load span reads out of a containing store's raw
/// value (both little-endian; `offset` is `load.addr - store.addr`).
pub fn extract_forwarded(store_raw: u64, offset: u64, load_size: AccessSize) -> u64 {
    (store_raw >> (8 * offset)) & size_mask(load_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_isa::{AluOp, BranchCond, FReg, FpuOp, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn alu_and_imm() {
        let i = Inst::Alu {
            op: AluOp::Sub,
            rd: r(1),
            rs1: r(2),
            rs2: r(3),
        };
        let o = compute(i, 0, &[RegValue::Int(10), RegValue::Int(4)]);
        assert_eq!(o.result, Some(RegValue::Int(6)));

        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: r(1),
            rs1: r(2),
            imm: -3,
        };
        let o = compute(i, 0, &[RegValue::Int(10)]);
        assert_eq!(o.result, Some(RegValue::Int(7)));
    }

    #[test]
    fn branch_direction_and_targets() {
        let b = Inst::Branch {
            cond: BranchCond::Lt,
            rs1: r(1),
            rs2: r(2),
            target: 42,
        };
        let taken = compute(b, 7, &[RegValue::Int(1), RegValue::Int(2)]);
        assert_eq!(taken.taken, Some(true));
        assert_eq!(taken.next_pc, Some(42));
        let not = compute(b, 7, &[RegValue::Int(2), RegValue::Int(2)]);
        assert_eq!(not.next_pc, Some(8));
    }

    #[test]
    fn jumps_link() {
        let j = Inst::Jal {
            rd: r(31),
            target: 100,
        };
        let o = compute(j, 9, &[]);
        assert_eq!(o.result, Some(RegValue::Int(10)));
        assert_eq!(o.next_pc, Some(100));
        let jr = Inst::Jalr {
            rd: r(0),
            rs1: r(31),
        };
        let o = compute(jr, 50, &[RegValue::Int(10)]);
        assert_eq!(o.next_pc, Some(10));
    }

    #[test]
    fn memory_effective_addresses() {
        let l = Inst::Load {
            size: AccessSize::B4,
            signed: true,
            rd: r(1),
            base: r(2),
            offset: -8,
        };
        let o = compute(l, 0, &[RegValue::Int(0x100)]);
        assert_eq!(o.ea, Some(Addr(0xF8)));
        let s = Inst::Store {
            size: AccessSize::B8,
            src: r(1),
            base: r(2),
            offset: 16,
        };
        let o = compute(s, 0, &[RegValue::Int(0x100), RegValue::Int(7)]);
        assert_eq!(o.ea, Some(Addr(0x110)));
    }

    #[test]
    fn fp_ops() {
        let f = Inst::Fpu {
            op: FpuOp::Fmul,
            fd: FReg::new(1),
            fs1: FReg::new(2),
            fs2: FReg::new(3),
        };
        let o = compute(f, 0, &[RegValue::Fp(1.5), RegValue::Fp(2.0)]);
        assert_eq!(o.result, Some(RegValue::Fp(3.0)));
    }

    #[test]
    fn load_value_conversions() {
        let lw = Inst::Load {
            size: AccessSize::B4,
            signed: true,
            rd: r(1),
            base: r(2),
            offset: 0,
        };
        assert_eq!(load_value(lw, 0xFFFF_FFFF).as_int() as i64, -1);
        let lwu = Inst::Load {
            size: AccessSize::B4,
            signed: false,
            rd: r(1),
            base: r(2),
            offset: 0,
        };
        assert_eq!(load_value(lwu, 0xFFFF_FFFF).as_int(), 0xFFFF_FFFF);
        let fld = Inst::FLoad {
            size: AccessSize::B8,
            fd: FReg::new(0),
            base: r(2),
            offset: 0,
        };
        assert_eq!(load_value(fld, 2.5f64.to_bits()).as_fp(), 2.5);
    }

    #[test]
    fn store_raw_conversions() {
        let sw = Inst::Store {
            size: AccessSize::B4,
            src: r(1),
            base: r(2),
            offset: 0,
        };
        assert_eq!(store_raw(sw, RegValue::Int(0x1_2345_6789)), 0x2345_6789);
        let fsw = Inst::FStore {
            size: AccessSize::B4,
            src: FReg::new(1),
            base: r(2),
            offset: 0,
        };
        assert_eq!(store_raw(fsw, RegValue::Fp(1.5)), (1.5f32).to_bits() as u64);
    }

    #[test]
    fn forwarding_extraction() {
        // Store 8 bytes 0x0102030405060708 at 0x100; load 2 bytes at 0x102.
        let raw = 0x0102_0304_0506_0708u64;
        assert_eq!(extract_forwarded(raw, 2, AccessSize::B2), 0x0506);
        assert_eq!(extract_forwarded(raw, 0, AccessSize::B8), raw);
        assert_eq!(extract_forwarded(raw, 7, AccessSize::B1), 0x01);
    }

    #[test]
    fn size_masks() {
        assert_eq!(size_mask(AccessSize::B1), 0xFF);
        assert_eq!(size_mask(AccessSize::B2), 0xFFFF);
        assert_eq!(size_mask(AccessSize::B4), 0xFFFF_FFFF);
        assert_eq!(size_mask(AccessSize::B8), u64::MAX);
    }
}
