//! Combined branch predictor (bimodal + gshare with a meta chooser) and a
//! set-associative branch target buffer, per the paper's Table 1.

/// A table of 2-bit saturating counters.
#[derive(Debug, Clone)]
struct CounterTable {
    counters: Vec<u8>,
}

impl CounterTable {
    fn new(entries: u32, init: u8) -> CounterTable {
        assert!(
            entries.is_power_of_two(),
            "predictor table size must be a power of two"
        );
        CounterTable {
            counters: vec![init; entries as usize],
        }
    }

    #[inline]
    fn index(&self, key: u64) -> usize {
        (key as usize) & (self.counters.len() - 1)
    }

    #[inline]
    fn predict(&self, key: u64) -> bool {
        self.counters[self.index(key)] >= 2
    }

    #[inline]
    fn update(&mut self, key: u64, taken: bool) {
        let idx = self.index(key);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// The combined direction predictor: bimodal and gshare components with a
/// per-branch meta chooser, plus a speculative global history register that
/// callers snapshot and restore across squashes.
///
/// # Examples
///
/// ```
/// use dmdc_ooo::BranchPredictor;
///
/// let mut bp = BranchPredictor::new(4096, 8192, 13, 8192);
/// // A branch that is always taken trains quickly.
/// for _ in 0..8 {
///     let (pred, snapshot) = bp.predict(100);
///     bp.speculate(100, pred);
///     bp.update(100, true, snapshot);
///     if !pred { bp.restore(snapshot); bp.speculate(100, true); }
/// }
/// assert!(bp.predict(100).0);
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: CounterTable,
    gshare: CounterTable,
    meta: CounterTable,
    history: u64,
    history_mask: u64,
}

/// Opaque snapshot of the speculative global history, taken at prediction
/// time and used both to update the right gshare row later and to repair
/// history after a squash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistorySnapshot(u64);

impl BranchPredictor {
    /// Creates a predictor with the given table sizes (powers of two) and
    /// history length.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two.
    pub fn new(
        bimodal_entries: u32,
        gshare_entries: u32,
        history_bits: u32,
        meta_entries: u32,
    ) -> BranchPredictor {
        BranchPredictor {
            bimodal: CounterTable::new(bimodal_entries, 2),
            gshare: CounterTable::new(gshare_entries, 2),
            meta: CounterTable::new(meta_entries, 2),
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
        }
    }

    /// The current speculative history, for instructions that do not predict
    /// (their squash-recovery restore point).
    pub fn snapshot(&self) -> HistorySnapshot {
        HistorySnapshot(self.history)
    }

    /// Predicts the direction of the conditional branch at instruction index
    /// `pc`. Returns the prediction and a history snapshot the caller must
    /// keep for [`BranchPredictor::update`]/[`BranchPredictor::restore`].
    pub fn predict(&self, pc: u32) -> (bool, HistorySnapshot) {
        let snapshot = HistorySnapshot(self.history);
        let g = self.gshare.predict(self.gshare_key(pc, self.history));
        let b = self.bimodal.predict(pc as u64);
        let use_gshare = self.meta.predict(pc as u64);
        (if use_gshare { g } else { b }, snapshot)
    }

    /// Pushes a *speculative* outcome into the global history (called at
    /// fetch with the predicted direction).
    pub fn speculate(&mut self, _pc: u32, taken: bool) {
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
    }

    /// Restores the history to a snapshot (squash recovery). The caller then
    /// re-speculates the surviving branch's actual outcome if appropriate.
    pub fn restore(&mut self, snapshot: HistorySnapshot) {
        self.history = snapshot.0;
    }

    /// Trains the predictor with the architecturally resolved outcome.
    /// `snapshot` is the history that was current when the branch predicted.
    pub fn update(&mut self, pc: u32, taken: bool, snapshot: HistorySnapshot) {
        let g_key = self.gshare_key(pc, snapshot.0);
        let g_correct = self.gshare.predict(g_key) == taken;
        let b_correct = self.bimodal.predict(pc as u64) == taken;
        self.gshare.update(g_key, taken);
        self.bimodal.update(pc as u64, taken);
        if g_correct != b_correct {
            self.meta.update(pc as u64, g_correct);
        }
    }

    #[inline]
    fn gshare_key(&self, pc: u32, history: u64) -> u64 {
        (pc as u64) ^ (history & self.history_mask)
    }

    /// Flattens the trained state (history register + the three counter
    /// tables, eight 2-bit counters packed per word) into a fixed-order
    /// word vector for checkpoint serialization.
    pub fn export_state(&self) -> Vec<u64> {
        let mut v = vec![self.history];
        for table in [&self.bimodal, &self.gshare, &self.meta] {
            v.extend(pack_counters(&table.counters));
        }
        v
    }

    /// Restores state captured by [`BranchPredictor::export_state`].
    /// Returns `None` (leaving the predictor untouched) on a geometry
    /// mismatch.
    pub fn import_state(&mut self, words: &[u64]) -> Option<()> {
        let lens = [
            self.bimodal.counters.len(),
            self.gshare.counters.len(),
            self.meta.counters.len(),
        ];
        let expect = 1 + lens.iter().map(|n| n.div_ceil(8)).sum::<usize>();
        if words.len() != expect {
            return None;
        }
        let mut at = 1;
        let mut unpacked = Vec::with_capacity(3);
        for n in lens {
            let w = n.div_ceil(8);
            unpacked.push(unpack_counters(&words[at..at + w], n));
            at += w;
        }
        self.history = words[0];
        self.meta.counters = unpacked.pop().expect("three tables");
        self.gshare.counters = unpacked.pop().expect("three tables");
        self.bimodal.counters = unpacked.pop().expect("three tables");
        Some(())
    }
}

/// Packs byte-sized counters eight to a `u64`, little-end first.
fn pack_counters(counters: &[u8]) -> Vec<u64> {
    counters
        .chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u64, |w, (i, &c)| w | (c as u64) << (8 * i))
        })
        .collect()
}

/// Inverse of [`pack_counters`] for a table of `n` counters.
fn unpack_counters(words: &[u64], n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (words[i / 8] >> (8 * (i % 8))) as u8)
        .collect()
}

/// A 4-way set-associative branch target buffer mapping instruction indices
/// to predicted target indices. Used for indirect jumps (`jalr`) and to
/// remember taken-branch targets.
#[derive(Debug, Clone)]
pub struct Btb {
    ways: usize,
    sets: usize,
    // (tag, target, lru tick) per way.
    entries: Vec<Option<(u32, u32, u64)>>,
    tick: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries, 4-way set-associative.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or smaller than 4.
    pub fn new(entries: u32) -> Btb {
        assert!(
            entries.is_power_of_two() && entries >= 4,
            "BTB entries must be a power of two >= 4"
        );
        let ways = 4;
        let sets = entries as usize / ways;
        Btb {
            ways,
            sets,
            entries: vec![None; entries as usize],
            tick: 0,
        }
    }

    fn set_of(&self, pc: u32) -> usize {
        (pc as usize) & (self.sets - 1)
    }

    /// Looks up the predicted target for `pc`.
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        self.tick += 1;
        let set = self.set_of(pc);
        for w in 0..self.ways {
            if let Some((tag, target, ref mut lru)) = self.entries[set * self.ways + w] {
                if tag == pc {
                    *lru = self.tick;
                    return Some(target);
                }
            }
        }
        None
    }

    /// Installs or updates the target for `pc`, evicting LRU on conflict.
    pub fn insert(&mut self, pc: u32, target: u32) {
        self.tick += 1;
        let set = self.set_of(pc);
        let base = set * self.ways;
        // Hit update.
        for w in 0..self.ways {
            if let Some((tag, ref mut t, ref mut lru)) = self.entries[base + w] {
                if tag == pc {
                    *t = target;
                    *lru = self.tick;
                    return;
                }
            }
        }
        // Empty way.
        for w in 0..self.ways {
            if self.entries[base + w].is_none() {
                self.entries[base + w] = Some((pc, target, self.tick));
                return;
            }
        }
        // Evict LRU.
        let victim = (0..self.ways)
            .min_by_key(|&w| self.entries[base + w].map(|(_, _, lru)| lru).unwrap_or(0))
            .expect("ways > 0");
        self.entries[base + victim] = Some((pc, target, self.tick));
    }

    /// Flattens the BTB (LRU clock + three words per entry: valid flag,
    /// packed tag/target, recency) into a fixed-order word vector for
    /// checkpoint serialization.
    pub fn export_state(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(1 + 3 * self.entries.len());
        v.push(self.tick);
        for e in &self.entries {
            match e {
                Some((tag, target, lru)) => {
                    v.push(1);
                    v.push((*tag as u64) << 32 | *target as u64);
                    v.push(*lru);
                }
                None => v.extend([0, 0, 0]),
            }
        }
        v
    }

    /// Restores state captured by [`Btb::export_state`]. Returns `None`
    /// (leaving the BTB untouched) on a geometry mismatch.
    pub fn import_state(&mut self, words: &[u64]) -> Option<()> {
        if words.len() != 1 + 3 * self.entries.len() {
            return None;
        }
        self.tick = words[0];
        for (i, e) in self.entries.iter_mut().enumerate() {
            let triple = &words[1 + 3 * i..4 + 3 * i];
            *e = (triple[0] != 0).then(|| ((triple[1] >> 32) as u32, triple[1] as u32, triple[2]));
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_saturates() {
        let mut t = CounterTable::new(4, 0);
        for _ in 0..10 {
            t.update(1, true);
        }
        assert!(t.predict(1));
        for _ in 0..10 {
            t.update(1, false);
        }
        assert!(!t.predict(1));
    }

    #[test]
    fn predictor_learns_biased_branch() {
        let mut bp = BranchPredictor::new(64, 64, 8, 64);
        for _ in 0..20 {
            let (pred, snap) = bp.predict(5);
            bp.speculate(5, pred);
            if !pred {
                bp.restore(snap);
                bp.speculate(5, true);
            }
            bp.update(5, true, snap);
        }
        assert!(bp.predict(5).0);
    }

    #[test]
    fn predictor_learns_alternating_pattern_via_gshare() {
        let mut bp = BranchPredictor::new(64, 1024, 10, 1024);
        // Alternating T/N is history-predictable, bimodal-hostile.
        let mut correct = 0;
        let mut outcome = false;
        for i in 0..400 {
            outcome = !outcome;
            let (pred, snap) = bp.predict(9);
            bp.speculate(9, pred);
            if pred != outcome {
                bp.restore(snap);
                bp.speculate(9, outcome);
            }
            bp.update(9, outcome, snap);
            if i >= 200 && pred == outcome {
                correct += 1;
            }
        }
        assert!(
            correct > 180,
            "gshare should lock onto alternation, got {correct}/200"
        );
    }

    #[test]
    fn history_restore_roundtrip() {
        let mut bp = BranchPredictor::new(16, 16, 4, 16);
        let (_, snap) = bp.predict(1);
        bp.speculate(1, true);
        bp.speculate(2, true);
        bp.restore(snap);
        let (_, snap2) = bp.predict(1);
        assert_eq!(snap, snap2);
    }

    #[test]
    fn btb_lookup_insert_evict() {
        let mut btb = Btb::new(16); // 4 sets x 4 ways
        assert_eq!(btb.lookup(8), None);
        btb.insert(8, 100);
        assert_eq!(btb.lookup(8), Some(100));
        btb.insert(8, 200);
        assert_eq!(btb.lookup(8), Some(200));
        // Fill one set (pcs congruent mod 4) beyond capacity.
        for pc in [4u32, 8, 12, 16, 20] {
            btb.insert(pc, pc + 1);
        }
        let present = [4u32, 8, 12, 16, 20]
            .iter()
            .filter(|&&pc| btb.lookup(pc).is_some())
            .count();
        assert_eq!(present, 4, "one entry must have been evicted");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_panics() {
        BranchPredictor::new(100, 64, 4, 64);
    }

    #[test]
    fn predictor_export_import_roundtrips_trained_state() {
        let mut trained = BranchPredictor::new(64, 1024, 10, 1024);
        let mut outcome = false;
        for pc in 0..200u32 {
            outcome = !outcome;
            let (pred, snap) = trained.predict(pc % 17);
            trained.speculate(pc % 17, pred);
            trained.update(pc % 17, outcome, snap);
        }
        let words = trained.export_state();
        let mut fresh = BranchPredictor::new(64, 1024, 10, 1024);
        fresh.import_state(&words).expect("same geometry");
        for pc in 0..32u32 {
            assert_eq!(fresh.predict(pc), trained.predict(pc));
        }
        assert_eq!(fresh.export_state(), words);
        let mut other = BranchPredictor::new(64, 512, 9, 1024);
        assert!(other.import_state(&words).is_none());
    }

    #[test]
    fn btb_export_import_roundtrips() {
        let mut warm = Btb::new(16);
        for pc in [4u32, 8, 12, 16, 20, 33, 77] {
            warm.insert(pc, pc * 3);
        }
        let words = warm.export_state();
        let mut fresh = Btb::new(16);
        fresh.import_state(&words).expect("same geometry");
        for pc in [4u32, 8, 12, 16, 20, 33, 77, 99] {
            assert_eq!(fresh.lookup(pc), warm.lookup(pc), "pc {pc}");
        }
        assert_eq!(fresh.export_state(), warm.export_state());
        let mut other = Btb::new(32);
        assert!(other.import_state(&words).is_none());
    }
}
