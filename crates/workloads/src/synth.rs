//! A parameterizable synthetic kernel for controlled experiments.
//!
//! The paper's mechanisms are sensitive to three workload properties: how
//! far apart a store and its consuming load are (the dependence distance),
//! how spread out addresses are (aliasing/hashing pressure), and how
//! predictable branches are (wrong-path pollution of the YLA registers).
//! [`SyntheticKernel`] exposes each as a knob.

use std::fmt::Write as _;

use dmdc_types::{Addr, SplitMix64};

use crate::{build, Group, Workload};

/// Builder for a synthetic load/store kernel.
///
/// Each iteration stores to a pseudo-random slot of a circular buffer and
/// loads from the slot written `store_load_gap` iterations ago: a small gap
/// creates genuine in-flight store-to-load dependences, a large gap makes
/// all communication flow through committed memory.
///
/// # Examples
///
/// ```
/// use dmdc_workloads::SyntheticKernel;
/// use dmdc_isa::Emulator;
///
/// let w = SyntheticKernel::new(2_000).store_load_gap(1).build();
/// let mut emu = Emulator::new(&w.program);
/// emu.run(10_000_000).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticKernel {
    iters: u32,
    addr_bits: u32,
    store_load_gap: u32,
    branch_noise: bool,
    late_store_addr: bool,
    seed: u32,
}

impl SyntheticKernel {
    /// A kernel running `iters` iterations with default knobs
    /// (64-slot buffer, gap 4, no branch noise).
    pub fn new(iters: u32) -> SyntheticKernel {
        SyntheticKernel {
            iters,
            addr_bits: 6,
            store_load_gap: 4,
            branch_noise: false,
            late_store_addr: false,
            seed: 271828,
        }
    }

    /// Sets the buffer size to `2^bits` 8-byte slots (1..=12).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=12`.
    pub fn addr_bits(mut self, bits: u32) -> SyntheticKernel {
        assert!((1..=12).contains(&bits), "addr_bits must be in 1..=12");
        self.addr_bits = bits;
        self
    }

    /// Sets how many iterations separate a store from the load that reads
    /// its slot.
    pub fn store_load_gap(mut self, gap: u32) -> SyntheticKernel {
        self.store_load_gap = gap;
        self
    }

    /// Adds a data-dependent (essentially unpredictable) branch to each
    /// iteration, driving wrong-path execution.
    pub fn branch_noise(mut self, on: bool) -> SyntheticKernel {
        self.branch_noise = on;
        self
    }

    /// Routes the store's address through a division so it resolves many
    /// cycles after younger loads become ready — the premature-load
    /// scenario DMDC's checking window exists for.
    pub fn late_store_addr(mut self, on: bool) -> SyntheticKernel {
        self.late_store_addr = on;
        self
    }

    /// Sets the LCG seed.
    pub fn seed(mut self, seed: u32) -> SyntheticKernel {
        self.seed = seed.max(1);
        self
    }

    /// Assembles the kernel.
    pub fn build(&self) -> Workload {
        let slots = 1u32 << self.addr_bits;
        let mask = slots - 1;
        let gap = self.store_load_gap.min(mask);
        let noise = if self.branch_noise {
            // Compare two different bit-slices of the LCG state: taken
            // roughly half the time with no learnable pattern.
            "         srli x16, x5, 23
                      andi x16, x16, 1
                      srli x17, x5, 37
                      andi x17, x17, 1
                      bne  x16, x17, noisy
                      addi x28, x28, 3
             noisy:"
        } else {
            ""
        };
        let slow_addr = if self.late_store_addr {
            // A divide in the address chain: the slot is unchanged (the
            // divide contributes zero) but resolves ~20 cycles late.
            "         li   x15, 97
                      div  x16, x5, x15
                      muli x16, x16, 0
                      add  x4, x4, x16"
        } else {
            ""
        };
        let asm = format!(
            "        li   x10, 0x300000
                     li   x11, {iters}
                     li   x5, {seed}
                     li   x6, 1103515245
                     li   x13, {mask}
                     li   x14, {gap}
                     li   x7, 0
                     li   x28, 0
             loop:   mul  x5, x5, x6
                     addi x5, x5, 12345
                     srli x4, x5, 15
                     and  x4, x4, x13      # store slot
             {slow_addr}
                     slli x9, x4, 3
                     add  x9, x9, x10
                     sd   x7, 0(x9)
                     sub  x3, x4, x14      # load slot: gap behind
                     and  x3, x3, x13
                     slli x9, x3, 3
                     add  x9, x9, x10
                     ld   x2, 0(x9)
                     add  x28, x28, x2
             {noise}
                     addi x7, x7, 1
                     blt  x7, x11, loop
                     halt",
            iters = self.iters,
            seed = self.seed,
        );
        let w = build("synthetic", Group::Int, &asm);
        Workload {
            name: w.name,
            group: w.group,
            program: w
                .program
                .with_data(Addr(0x30_0000), vec![0u8; u64::from(slots) as usize * 8]),
        }
    }
}

/// Base address of the fuzz kernel's data region.
const FUZZ_BASE: u64 = 0x40_0000;

/// Bytes in the fuzz data region (covers `far` accesses at +8 KiB).
const FUZZ_DATA_BYTES: usize = 16 * 1024;

/// Distance that maps to the *same* index of a 1024-entry checking table
/// (1024 entries × 8-byte quad words) — `far` accesses provoke hashing
/// conflicts without address overlap.
const FAR_STRIDE: u64 = 8 * 1024;

/// One operation of a [`FuzzKernel`] iteration body.
///
/// Memory operands are static (slot/sub/far decide the address), but the
/// *data* flowing through them is the per-iteration LCG state, and `late`
/// routes a store's address through a divide so it resolves long after
/// younger loads issued — the premature-load scenario the paper's checking
/// window exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzOp {
    /// A store of the LCG state.
    Store {
        /// Access bytes: 1, 2, 4 or 8.
        width: u8,
        /// Quad-word slot (0..16) — a 128-byte hot region, heavy aliasing.
        slot: u8,
        /// Offset by `width` bytes within the quad word (sub-quad-word
        /// bitmap discrimination; ignored for width 8).
        sub: bool,
        /// Route the address through a divide (resolves ~20 cycles late).
        late: bool,
        /// Add [`FAR_STRIDE`]: same checking-table index, disjoint address.
        far: bool,
    },
    /// A load accumulated into the `x28` checksum.
    Load {
        /// Access bytes: 1, 2, 4 or 8.
        width: u8,
        /// Quad-word slot (0..16).
        slot: u8,
        /// Offset by `width` bytes within the quad word.
        sub: bool,
        /// Add [`FAR_STRIDE`].
        far: bool,
    },
    /// A data-dependent branch skipping the next `skip` ops (clamped to
    /// the ops remaining) about half the time, unpredictably.
    Branch {
        /// Ops to jump over when taken.
        skip: u8,
    },
    /// Checksum-visible filler.
    Alu,
}

impl FuzzOp {
    fn offset(width: u8, slot: u8, sub: bool, far: bool) -> u64 {
        let mut off = u64::from(slot) * 8;
        if sub && width < 8 {
            off += u64::from(width);
        }
        if far {
            off += FAR_STRIDE;
        }
        off
    }

    /// One-line token form used in repro files; parsed back by
    /// [`FuzzOp::parse_token`].
    pub fn token(&self) -> String {
        match *self {
            FuzzOp::Store {
                width,
                slot,
                sub,
                late,
                far,
            } => {
                let mut s = format!("store w={width} slot={slot}");
                if sub {
                    s.push_str(" sub");
                }
                if late {
                    s.push_str(" late");
                }
                if far {
                    s.push_str(" far");
                }
                s
            }
            FuzzOp::Load {
                width,
                slot,
                sub,
                far,
            } => {
                let mut s = format!("load w={width} slot={slot}");
                if sub {
                    s.push_str(" sub");
                }
                if far {
                    s.push_str(" far");
                }
                s
            }
            FuzzOp::Branch { skip } => format!("branch skip={skip}"),
            FuzzOp::Alu => "alu".to_string(),
        }
    }

    /// Parses a [`FuzzOp::token`] line.
    pub fn parse_token(line: &str) -> Result<FuzzOp, String> {
        let mut words = line.split_whitespace();
        let head = words.next().ok_or("empty fuzz op")?;
        let mut width = 8u8;
        let mut slot = 0u8;
        let mut skip = 1u8;
        let (mut sub, mut late, mut far) = (false, false, false);
        for w in words {
            if let Some(v) = w.strip_prefix("w=") {
                width = v.parse().map_err(|_| format!("bad width in `{line}`"))?;
            } else if let Some(v) = w.strip_prefix("slot=") {
                slot = v.parse().map_err(|_| format!("bad slot in `{line}`"))?;
            } else if let Some(v) = w.strip_prefix("skip=") {
                skip = v.parse().map_err(|_| format!("bad skip in `{line}`"))?;
            } else {
                match w {
                    "sub" => sub = true,
                    "late" => late = true,
                    "far" => far = true,
                    other => return Err(format!("unknown fuzz-op flag `{other}`")),
                }
            }
        }
        match head {
            "store" => Ok(FuzzOp::Store {
                width,
                slot,
                sub,
                late,
                far,
            }),
            "load" => Ok(FuzzOp::Load {
                width,
                slot,
                sub,
                far,
            }),
            "branch" => Ok(FuzzOp::Branch { skip }),
            "alu" => Ok(FuzzOp::Alu),
            other => Err(format!("unknown fuzz op `{other}`")),
        }
    }
}

/// A seeded random torture kernel for the differential fuzzer: a short
/// loop whose body is a random mix of aliasing-heavy stores and loads
/// (mixed widths, late-resolving addresses, hash-conflicting `far`
/// accesses) and unpredictable branches. Same `(seed, index)` → same
/// kernel, bit for bit.
///
/// # Examples
///
/// ```
/// use dmdc_workloads::FuzzKernel;
/// use dmdc_isa::Emulator;
///
/// let k = FuzzKernel::generate(1, 0);
/// assert_eq!(k, FuzzKernel::generate(1, 0), "deterministic");
/// let workload = k.build();
/// let mut emu = Emulator::new(&workload.program);
/// emu.run(10_000_000).expect("fuzz kernels halt");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzKernel {
    /// The iteration body.
    pub ops: Vec<FuzzOp>,
    /// Loop iterations.
    pub iters: u32,
}

impl FuzzKernel {
    /// Generates kernel number `index` of the stream seeded `seed`.
    pub fn generate(seed: u64, index: u64) -> FuzzKernel {
        let mut rng = SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let nops = 6 + rng.next_below(11) as usize;
        let iters = 40 + rng.next_below(81) as u32;
        let widths = [1u8, 2, 4, 8];
        let ops = (0..nops)
            .map(|_| match rng.next_below(100) {
                0..=39 => FuzzOp::Store {
                    width: widths[rng.next_below(4) as usize],
                    slot: rng.next_below(16) as u8,
                    sub: rng.next_below(2) == 1,
                    late: rng.next_below(100) < 35,
                    far: rng.next_below(100) < 15,
                },
                40..=79 => FuzzOp::Load {
                    width: widths[rng.next_below(4) as usize],
                    slot: rng.next_below(16) as u8,
                    sub: rng.next_below(2) == 1,
                    far: rng.next_below(100) < 15,
                },
                80..=89 => FuzzOp::Branch {
                    skip: 1 + rng.next_below(3) as u8,
                },
                _ => FuzzOp::Alu,
            })
            .collect();
        FuzzKernel { ops, iters }
    }

    /// Renders the kernel's assembly source.
    pub fn asm(&self) -> String {
        let mut body = String::new();
        // (ops until the label, label id) for in-flight branch skips.
        let mut pending: Vec<(usize, usize)> = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            match *op {
                FuzzOp::Store {
                    width,
                    slot,
                    sub,
                    late,
                    far,
                } => {
                    let addr = FUZZ_BASE + FuzzOp::offset(width, slot, sub, far);
                    writeln!(body, "    li   x9, {addr:#x}").unwrap();
                    if late {
                        writeln!(body, "    li   x15, 97").unwrap();
                        writeln!(body, "    div  x16, x5, x15").unwrap();
                        writeln!(body, "    muli x16, x16, 0").unwrap();
                        writeln!(body, "    add  x9, x9, x16").unwrap();
                    }
                    let mn = match width {
                        1 => "sb",
                        2 => "sh",
                        4 => "sw",
                        _ => "sd",
                    };
                    writeln!(body, "    {mn}   x5, 0(x9)").unwrap();
                }
                FuzzOp::Load {
                    width,
                    slot,
                    sub,
                    far,
                } => {
                    let addr = FUZZ_BASE + FuzzOp::offset(width, slot, sub, far);
                    let mn = match width {
                        1 => "lbu",
                        2 => "lhu",
                        4 => "lwu",
                        _ => "ld",
                    };
                    writeln!(body, "    li   x9, {addr:#x}").unwrap();
                    writeln!(body, "    {mn}  x2, 0(x9)").unwrap();
                    writeln!(body, "    add  x28, x28, x2").unwrap();
                }
                FuzzOp::Branch { skip } => {
                    let skip = (skip as usize).min(self.ops.len() - 1 - i);
                    if skip > 0 {
                        writeln!(body, "    srli x16, x5, 23").unwrap();
                        writeln!(body, "    andi x16, x16, 1").unwrap();
                        writeln!(body, "    srli x17, x5, 37").unwrap();
                        writeln!(body, "    andi x17, x17, 1").unwrap();
                        writeln!(body, "    bne  x16, x17, fz_{i}").unwrap();
                        pending.push((skip, i));
                    }
                }
                FuzzOp::Alu => {
                    writeln!(body, "    addi x28, x28, {}", i + 1).unwrap();
                }
            }
            for p in &mut pending {
                p.0 -= 1;
            }
            for &(_, label) in pending.iter().filter(|p| p.0 == 0) {
                writeln!(body, "fz_{label}:").unwrap();
            }
            pending.retain(|p| p.0 > 0);
        }
        for &(_, label) in &pending {
            writeln!(body, "fz_{label}:").unwrap();
        }
        format!(
            "    li   x11, {iters}
    li   x5, 362436069
    li   x6, 1103515245
    li   x7, 0
    li   x28, 0
loop:
    mul  x5, x5, x6
    addi x5, x5, 12345
{body}    addi x7, x7, 1
    blt  x7, x11, loop
    halt",
            iters = self.iters,
        )
    }

    /// Assembles the kernel into a runnable [`Workload`].
    pub fn build(&self) -> Workload {
        let w = build("fuzz", Group::Int, &self.asm());
        Workload {
            name: w.name,
            group: w.group,
            program: w
                .program
                .with_data(Addr(FUZZ_BASE), vec![0u8; FUZZ_DATA_BYTES]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_isa::Emulator;

    #[test]
    fn builds_and_halts() {
        let w = SyntheticKernel::new(1_000).build();
        let mut e = Emulator::new(&w.program);
        let retired = e.run(1_000_000).unwrap();
        assert!(retired > 10_000);
    }

    #[test]
    fn gap_zero_reads_back_own_store() {
        let w = SyntheticKernel::new(500).store_load_gap(0).build();
        let mut e = Emulator::new(&w.program);
        e.run(1_000_000).unwrap();
        // Every load reads the iteration counter just stored: sum 0..500.
        assert_eq!(e.int_reg(28), 499 * 500 / 2);
    }

    #[test]
    fn branch_noise_changes_dynamic_path() {
        let quiet = {
            let w = SyntheticKernel::new(500).build();
            let mut e = Emulator::new(&w.program);
            e.run(1_000_000).unwrap()
        };
        let noisy = {
            let w = SyntheticKernel::new(500).branch_noise(true).build();
            let mut e = Emulator::new(&w.program);
            e.run(1_000_000).unwrap()
        };
        assert!(noisy > quiet, "noise adds instructions");
    }

    #[test]
    fn seed_changes_addresses_not_structure() {
        let a = SyntheticKernel::new(300).seed(1).build();
        let b = SyntheticKernel::new(300).seed(2).build();
        let mut ea = Emulator::new(&a.program);
        let mut eb = Emulator::new(&b.program);
        ea.run(1_000_000).unwrap();
        eb.run(1_000_000).unwrap();
        assert_ne!(ea.memory().checksum(), eb.memory().checksum());
    }

    #[test]
    #[should_panic(expected = "addr_bits")]
    fn addr_bits_validated() {
        SyntheticKernel::new(10).addr_bits(20);
    }

    #[test]
    fn late_store_addr_preserves_results() {
        // The divide contributes zero to the slot, so architectural results
        // match the fast-address variant; only timing differs.
        let fast = SyntheticKernel::new(400).seed(9).build();
        let slow = SyntheticKernel::new(400)
            .seed(9)
            .late_store_addr(true)
            .build();
        let mut ef = Emulator::new(&fast.program);
        let mut es = Emulator::new(&slow.program);
        ef.run(1_000_000).unwrap();
        es.run(1_000_000).unwrap();
        assert_eq!(ef.int_reg(28), es.int_reg(28));
        assert_eq!(ef.memory().checksum(), es.memory().checksum());
    }

    #[test]
    fn fuzz_kernels_deterministic_per_seed() {
        for index in 0..8 {
            let a = FuzzKernel::generate(1234, index);
            let b = FuzzKernel::generate(1234, index);
            assert_eq!(a, b);
            assert_eq!(a.asm(), b.asm());
        }
        assert_ne!(FuzzKernel::generate(1234, 0), FuzzKernel::generate(1235, 0));
    }

    #[test]
    fn fuzz_kernels_assemble_and_halt() {
        for index in 0..16 {
            let k = FuzzKernel::generate(7, index);
            let w = k.build();
            let mut emu = Emulator::new(&w.program);
            emu.run(10_000_000)
                .unwrap_or_else(|e| panic!("kernel {index} did not halt: {e:?}"));
        }
    }

    #[test]
    fn fuzz_op_token_round_trip() {
        for index in 0..32 {
            for op in FuzzKernel::generate(99, index).ops {
                let line = op.token();
                assert_eq!(FuzzOp::parse_token(&line), Ok(op), "token `{line}`");
            }
        }
        assert!(FuzzOp::parse_token("teleport w=8").is_err());
        assert!(FuzzOp::parse_token("store w=banana").is_err());
    }

    #[test]
    fn fuzz_branch_skips_clamp_at_tail() {
        // A branch as the final op has nothing to skip; the kernel must
        // still assemble (no dangling label) and halt.
        let k = FuzzKernel {
            ops: vec![FuzzOp::Alu, FuzzOp::Branch { skip: 3 }],
            iters: 5,
        };
        let w = k.build();
        let mut emu = Emulator::new(&w.program);
        emu.run(100_000).unwrap();
    }
}
