//! A parameterizable synthetic kernel for controlled experiments.
//!
//! The paper's mechanisms are sensitive to three workload properties: how
//! far apart a store and its consuming load are (the dependence distance),
//! how spread out addresses are (aliasing/hashing pressure), and how
//! predictable branches are (wrong-path pollution of the YLA registers).
//! [`SyntheticKernel`] exposes each as a knob.

use dmdc_types::Addr;

use crate::{build, Group, Workload};

/// Builder for a synthetic load/store kernel.
///
/// Each iteration stores to a pseudo-random slot of a circular buffer and
/// loads from the slot written `store_load_gap` iterations ago: a small gap
/// creates genuine in-flight store-to-load dependences, a large gap makes
/// all communication flow through committed memory.
///
/// # Examples
///
/// ```
/// use dmdc_workloads::SyntheticKernel;
/// use dmdc_isa::Emulator;
///
/// let w = SyntheticKernel::new(2_000).store_load_gap(1).build();
/// let mut emu = Emulator::new(&w.program);
/// emu.run(10_000_000).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticKernel {
    iters: u32,
    addr_bits: u32,
    store_load_gap: u32,
    branch_noise: bool,
    late_store_addr: bool,
    seed: u32,
}

impl SyntheticKernel {
    /// A kernel running `iters` iterations with default knobs
    /// (64-slot buffer, gap 4, no branch noise).
    pub fn new(iters: u32) -> SyntheticKernel {
        SyntheticKernel {
            iters,
            addr_bits: 6,
            store_load_gap: 4,
            branch_noise: false,
            late_store_addr: false,
            seed: 271828,
        }
    }

    /// Sets the buffer size to `2^bits` 8-byte slots (1..=12).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=12`.
    pub fn addr_bits(mut self, bits: u32) -> SyntheticKernel {
        assert!((1..=12).contains(&bits), "addr_bits must be in 1..=12");
        self.addr_bits = bits;
        self
    }

    /// Sets how many iterations separate a store from the load that reads
    /// its slot.
    pub fn store_load_gap(mut self, gap: u32) -> SyntheticKernel {
        self.store_load_gap = gap;
        self
    }

    /// Adds a data-dependent (essentially unpredictable) branch to each
    /// iteration, driving wrong-path execution.
    pub fn branch_noise(mut self, on: bool) -> SyntheticKernel {
        self.branch_noise = on;
        self
    }

    /// Routes the store's address through a division so it resolves many
    /// cycles after younger loads become ready — the premature-load
    /// scenario DMDC's checking window exists for.
    pub fn late_store_addr(mut self, on: bool) -> SyntheticKernel {
        self.late_store_addr = on;
        self
    }

    /// Sets the LCG seed.
    pub fn seed(mut self, seed: u32) -> SyntheticKernel {
        self.seed = seed.max(1);
        self
    }

    /// Assembles the kernel.
    pub fn build(&self) -> Workload {
        let slots = 1u32 << self.addr_bits;
        let mask = slots - 1;
        let gap = self.store_load_gap.min(mask);
        let noise = if self.branch_noise {
            // Compare two different bit-slices of the LCG state: taken
            // roughly half the time with no learnable pattern.
            "         srli x16, x5, 23
                      andi x16, x16, 1
                      srli x17, x5, 37
                      andi x17, x17, 1
                      bne  x16, x17, noisy
                      addi x28, x28, 3
             noisy:"
        } else {
            ""
        };
        let slow_addr = if self.late_store_addr {
            // A divide in the address chain: the slot is unchanged (the
            // divide contributes zero) but resolves ~20 cycles late.
            "         li   x15, 97
                      div  x16, x5, x15
                      muli x16, x16, 0
                      add  x4, x4, x16"
        } else {
            ""
        };
        let asm = format!(
            "        li   x10, 0x300000
                     li   x11, {iters}
                     li   x5, {seed}
                     li   x6, 1103515245
                     li   x13, {mask}
                     li   x14, {gap}
                     li   x7, 0
                     li   x28, 0
             loop:   mul  x5, x5, x6
                     addi x5, x5, 12345
                     srli x4, x5, 15
                     and  x4, x4, x13      # store slot
             {slow_addr}
                     slli x9, x4, 3
                     add  x9, x9, x10
                     sd   x7, 0(x9)
                     sub  x3, x4, x14      # load slot: gap behind
                     and  x3, x3, x13
                     slli x9, x3, 3
                     add  x9, x9, x10
                     ld   x2, 0(x9)
                     add  x28, x28, x2
             {noise}
                     addi x7, x7, 1
                     blt  x7, x11, loop
                     halt",
            iters = self.iters,
            seed = self.seed,
        );
        let w = build("synthetic", Group::Int, &asm);
        Workload {
            name: w.name,
            group: w.group,
            program: w
                .program
                .with_data(Addr(0x30_0000), vec![0u8; u64::from(slots) as usize * 8]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_isa::Emulator;

    #[test]
    fn builds_and_halts() {
        let w = SyntheticKernel::new(1_000).build();
        let mut e = Emulator::new(&w.program);
        let retired = e.run(1_000_000).unwrap();
        assert!(retired > 10_000);
    }

    #[test]
    fn gap_zero_reads_back_own_store() {
        let w = SyntheticKernel::new(500).store_load_gap(0).build();
        let mut e = Emulator::new(&w.program);
        e.run(1_000_000).unwrap();
        // Every load reads the iteration counter just stored: sum 0..500.
        assert_eq!(e.int_reg(28), 499 * 500 / 2);
    }

    #[test]
    fn branch_noise_changes_dynamic_path() {
        let quiet = {
            let w = SyntheticKernel::new(500).build();
            let mut e = Emulator::new(&w.program);
            e.run(1_000_000).unwrap()
        };
        let noisy = {
            let w = SyntheticKernel::new(500).branch_noise(true).build();
            let mut e = Emulator::new(&w.program);
            e.run(1_000_000).unwrap()
        };
        assert!(noisy > quiet, "noise adds instructions");
    }

    #[test]
    fn seed_changes_addresses_not_structure() {
        let a = SyntheticKernel::new(300).seed(1).build();
        let b = SyntheticKernel::new(300).seed(2).build();
        let mut ea = Emulator::new(&a.program);
        let mut eb = Emulator::new(&b.program);
        ea.run(1_000_000).unwrap();
        eb.run(1_000_000).unwrap();
        assert_ne!(ea.memory().checksum(), eb.memory().checksum());
    }

    #[test]
    #[should_panic(expected = "addr_bits")]
    fn addr_bits_validated() {
        SyntheticKernel::new(10).addr_bits(20);
    }

    #[test]
    fn late_store_addr_preserves_results() {
        // The divide contributes zero to the slot, so architectural results
        // match the fast-address variant; only timing differs.
        let fast = SyntheticKernel::new(400).seed(9).build();
        let slow = SyntheticKernel::new(400)
            .seed(9)
            .late_store_addr(true)
            .build();
        let mut ef = Emulator::new(&fast.program);
        let mut es = Emulator::new(&slow.program);
        ef.run(1_000_000).unwrap();
        es.run(1_000_000).unwrap();
        assert_eq!(ef.int_reg(28), es.int_reg(28));
        assert_eq!(ef.memory().checksum(), es.memory().checksum());
    }
}
