//! Benchmark workloads for the DMDC reproduction.
//!
//! The paper evaluates on the 26 SPEC CPU2000 benchmarks (100M-instruction
//! SimPoint regions). Those binaries cannot run on this substrate, so this
//! crate provides the substitute documented in DESIGN.md: two suites of
//! micro-benchmarks written in the `dmdc-isa` assembly language —
//!
//! * **INT** ([`int_suite`]): hash-table probing, odd-even sorting, linked
//!   lists, bitwise CRC, population counts, substring search and
//!   histogramming — pointer-chasing, data-dependent branches and frequent
//!   store-to-load communication, like the SPECint mix;
//! * **FP** ([`fp_suite`]): matrix multiply, SAXPY, a 3-point stencil, an
//!   FIR filter, an n-body force step, a divide-heavy series and a
//!   triangular solve — regular strided loops with long-latency FP
//!   operations, like the SPECfp mix;
//!
//! plus a parameterizable synthetic kernel ([`SyntheticKernel`]) whose
//! store→load distance, address entropy and branch noise are controlled
//! knobs for targeted experiments.
//!
//! Every workload halts, leaves a checksum in `x28` (or `f28`), and
//! pre-declares its data footprint so the invalidation injector knows the
//! address space.
//!
//! # Examples
//!
//! ```
//! use dmdc_workloads::{int_suite, Scale};
//! use dmdc_isa::Emulator;
//!
//! let suite = int_suite(Scale::Smoke);
//! assert!(suite.len() >= 7);
//! for w in &suite {
//!     let mut emu = Emulator::new(&w.program);
//!     emu.run(10_000_000).expect("workloads halt");
//! }
//! ```

mod fp;
mod int;
mod litmus;
mod synth;

use dmdc_isa::Program;

pub use litmus::{litmus_suite, mt_share, LitmusKernel, SharingKernel};
pub use synth::{FuzzKernel, FuzzOp, SyntheticKernel};

/// Which suite a workload belongs to (the paper reports INT/FP averages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// Integer suite.
    Int,
    /// Floating-point suite.
    Fp,
}

impl std::fmt::Display for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Group::Int => write!(f, "INT"),
            Group::Fp => write!(f, "FP"),
        }
    }
}

/// How big a run to build. Experiments use `Default`; tests use `Smoke`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Fast CI-sized runs (tens of thousands of instructions).
    Smoke,
    /// Experiment-sized runs (hundreds of thousands of instructions).
    Default,
    /// Long runs for stable statistics (millions of instructions).
    Large,
    /// Paper-scale runs (tens of millions of instructions) — only
    /// tractable under the sampling engine, which is why the CLI defaults
    /// `--scale full` to sampled mode.
    Full,
}

impl Scale {
    /// The iteration multiplier this scale applies to each kernel.
    pub fn factor(self) -> u32 {
        match self {
            Scale::Smoke => 1,
            Scale::Default => 8,
            Scale::Large => 64,
            Scale::Full => 256,
        }
    }
}

/// A named, ready-to-run benchmark.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short kernel name ("hash", "mm", ...).
    pub name: &'static str,
    /// Suite membership.
    pub group: Group,
    /// The assembled program with its data segments.
    pub program: Program,
}

/// The integer suite.
pub fn int_suite(scale: Scale) -> Vec<Workload> {
    let f = scale.factor();
    vec![
        int::hash(700 * f),
        int::sort(96, 6 * f),
        int::list(64, 24 * f),
        int::crc(192, 2 * f),
        int::bitcnt(900 * f),
        int::strmatch(512, 3 * f),
        int::histo(1500 * f),
    ]
}

/// The floating-point suite.
pub fn fp_suite(scale: Scale) -> Vec<Workload> {
    let f = scale.factor();
    vec![
        fp::mm(10, 2 * f),
        fp::saxpy(256, 8 * f),
        fp::stencil(192, 8 * f),
        fp::fir(256, 8, 4 * f),
        fp::nbody(20, 2 * f),
        fp::mc(1200 * f),
        fp::tri(20, 8 * f),
    ]
}

/// Both suites, INT first.
pub fn full_suite(scale: Scale) -> Vec<Workload> {
    let mut v = int_suite(scale);
    v.extend(fp_suite(scale));
    v
}

/// Assembles a kernel, panicking with a readable message on error —
/// kernel sources are compiled into this crate, so a failure is a bug here,
/// not a user input problem.
pub(crate) fn build(name: &'static str, group: Group, asm: &str) -> Workload {
    let program = dmdc_isa::Assembler::new()
        .assemble_named(name, asm)
        .unwrap_or_else(|e| panic!("workload `{name}` failed to assemble: {e}\n{asm}"));
    Workload {
        name,
        group,
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_isa::Emulator;

    #[test]
    fn suites_have_expected_sizes_and_groups() {
        let ints = int_suite(Scale::Smoke);
        let fps = fp_suite(Scale::Smoke);
        assert_eq!(ints.len(), 7);
        assert_eq!(fps.len(), 7);
        assert!(ints.iter().all(|w| w.group == Group::Int));
        assert!(fps.iter().all(|w| w.group == Group::Fp));
        assert_eq!(full_suite(Scale::Smoke).len(), 14);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = full_suite(Scale::Smoke).iter().map(|w| w.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn every_workload_halts_and_does_memory_work() {
        for w in full_suite(Scale::Smoke) {
            let mut emu = Emulator::new(&w.program);
            let retired = emu
                .run(20_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                retired > 3_000,
                "{} too small: {retired} instructions",
                w.name
            );
            assert!(
                retired < 5_000_000,
                "{} too large for smoke: {retired}",
                w.name
            );
            assert!(
                emu.memory().page_count() > 0,
                "{} never touched memory",
                w.name
            );
        }
    }

    #[test]
    fn scales_monotonically_increase_work() {
        for (small, big) in int_suite(Scale::Smoke)
            .iter()
            .zip(int_suite(Scale::Default).iter())
        {
            let mut a = Emulator::new(&small.program);
            let mut b = Emulator::new(&big.program);
            let ra = a.run(100_000_000).unwrap();
            let rb = b.run(100_000_000).unwrap();
            assert!(
                rb > ra * 2,
                "{}: default scale should do much more work",
                small.name
            );
        }
    }

    #[test]
    fn workloads_leave_nonzero_checksums() {
        for w in full_suite(Scale::Smoke) {
            let mut emu = Emulator::new(&w.program);
            emu.run(20_000_000).unwrap();
            let int_sum = emu.int_reg(28);
            let fp_sum = emu.fp_reg(28);
            assert!(
                int_sum != 0 || fp_sum != 0.0,
                "{} left no checksum in x28/f28",
                w.name
            );
        }
    }
}
