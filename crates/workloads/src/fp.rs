//! The floating-point suite: regular strided loops with long-latency FP
//! arithmetic, in the spirit of SPECfp. Each kernel leaves a checksum in
//! `f28` (and its integer truncation in `x28`).

use crate::int::with_buffer;
use crate::{build, Group, Workload};

/// Dense `n × n` double-precision matrix multiply, repeated `reps` times.
pub fn mm(n: u32, reps: u32) -> Workload {
    let nn = n * n;
    let asm = format!(
        "        li   x10, 0x200000     # A
                 li   x11, 0x211040     # B (staggered mod table size)
                 li   x12, 0x222080     # C (staggered)
                 li   x13, {n}
                 li   x14, {nn}
                 li   x7, 0
         init:   i2f  f1, x7
                 slli x9, x7, 3
                 add  x8, x9, x10
                 fsd  f1, 0(x8)
                 addi x2, x7, 3
                 i2f  f2, x2
                 add  x8, x9, x11
                 fsd  f2, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x14, init
                 li   x20, {reps}
                 li   x21, 0
         rep:    li   x3, 0
         iloop:  li   x4, 0
         jloop:  li   x5, 0
                 i2f  f3, x0
         kloop:  mul  x8, x3, x13
                 add  x8, x8, x5
                 slli x8, x8, 3
                 add  x8, x8, x10
                 fld  f1, 0(x8)
                 mul  x8, x5, x13
                 add  x8, x8, x4
                 slli x8, x8, 3
                 add  x8, x8, x11
                 fld  f2, 0(x8)
                 fmul f4, f1, f2
                 fadd f3, f3, f4
                 addi x5, x5, 1
                 blt  x5, x13, kloop
                 mul  x8, x3, x13
                 add  x8, x8, x4
                 slli x8, x8, 3
                 add  x8, x8, x12
                 fsd  f3, 0(x8)
                 addi x4, x4, 1
                 blt  x4, x13, jloop
                 addi x3, x3, 1
                 blt  x3, x13, iloop
                 addi x21, x21, 1
                 blt  x21, x20, rep
                 li   x7, 0
                 i2f  f28, x0
         cks:    slli x9, x7, 3
                 add  x9, x9, x12
                 fld  f1, 0(x9)
                 fadd f28, f28, f1
                 addi x7, x7, 1
                 blt  x7, x14, cks
                 f2i  x28, f28
                 halt"
    );
    let bytes = u64::from(nn) * 8;
    let w = with_buffer(build("mm", Group::Fp, &asm), 0x20_0000, bytes);
    let w = with_buffer(w, 0x21_1040, bytes);
    with_buffer(w, 0x22_2080, bytes)
}

/// `y[i] += a * x[i]` over `n` doubles, `reps` sweeps (`a = 1.5`).
pub fn saxpy(n: u32, reps: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x230000     # x
                 li   x11, 0x241040     # y (staggered)
                 li   x13, {n}
                 li   x2, 3
                 i2f  f5, x2
                 li   x2, 2
                 i2f  f6, x2
                 fdiv f5, f5, f6        # a = 1.5
                 li   x7, 0
         init:   i2f  f1, x7
                 slli x9, x7, 3
                 add  x8, x9, x10
                 fsd  f1, 0(x8)
                 neg  x2, x7
                 i2f  f2, x2
                 add  x8, x9, x11
                 fsd  f2, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x13, init
                 li   x20, {reps}
                 li   x21, 0
         rep:    li   x7, 0
         loop:   slli x9, x7, 3
                 add  x8, x9, x10
                 fld  f1, 0(x8)
                 add  x8, x9, x11
                 fld  f2, 0(x8)
                 fmul f3, f1, f5
                 fadd f2, f2, f3
                 fsd  f2, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x13, loop
                 addi x21, x21, 1
                 blt  x21, x20, rep
                 li   x7, 0
                 i2f  f28, x0
         cks:    slli x9, x7, 3
                 add  x9, x9, x11
                 fld  f1, 0(x9)
                 fadd f28, f28, f1
                 addi x7, x7, 1
                 blt  x7, x13, cks
                 f2i  x28, f28
                 halt"
    );
    let bytes = u64::from(n) * 8;
    let w = with_buffer(build("saxpy", Group::Fp, &asm), 0x23_0000, bytes);
    with_buffer(w, 0x24_1040, bytes)
}

/// 3-point averaging stencil over `n` doubles on an *irregularly numbered*
/// mesh: the write position comes through a permutation table (as in
/// unstructured-mesh codes), so store addresses resolve one load later than
/// the streaming reads around them.
pub fn stencil(n: u32, steps: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x250000     # a
                 li   x11, 0x261040     # b (staggered)
                 li   x12, 0x272080     # perm (staggered)
                 li   x13, {n}
                 li   x2, 3
                 i2f  f7, x2            # divisor
                 li   x7, 0
                 li   x6, 509           # odd multiplier: a permutation mod n
                 addi x15, x13, -1
         init:   mul  x2, x7, x7
                 andi x2, x2, 255
                 i2f  f1, x2
                 slli x9, x7, 3
                 add  x8, x9, x10
                 fsd  f1, 0(x8)
                 mul  x3, x7, x6
                 and  x3, x3, x15       # perm[i] = (509*i) & (n-1)
                 add  x8, x9, x12
                 sd   x3, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x13, init
                 li   x20, {steps}
                 li   x21, 0
                 addi x14, x13, -1
         step:   li   x7, 1
         loop:   slli x9, x7, 3
                 add  x8, x9, x10
                 fld  f1, -8(x8)
                 fld  f2, 0(x8)
                 fld  f3, 8(x8)
                 fadd f4, f1, f2
                 fadd f4, f4, f3
                 fdiv f4, f4, f7
                 andi x4, x7, 15
                 bne  x4, x0, direct    # 1 in 16 positions is irregular
                 add  x8, x9, x12
                 ld   x3, 0(x8)         # write position through the mesh map
                 slli x3, x3, 3
                 add  x8, x3, x11
                 fsd  f4, 0(x8)         # store address one load late
                 j    next
         direct: add  x8, x9, x11
                 fsd  f4, 0(x8)
         next:   addi x7, x7, 1
                 blt  x7, x14, loop
                 # copy b back to a
                 li   x7, 1
         copy:   slli x9, x7, 3
                 add  x8, x9, x11
                 fld  f1, 0(x8)
                 add  x8, x9, x10
                 fsd  f1, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x14, copy
                 addi x21, x21, 1
                 blt  x21, x20, step
                 li   x7, 0
                 i2f  f28, x0
         cks:    slli x9, x7, 3
                 add  x9, x9, x10
                 fld  f1, 0(x9)
                 fadd f28, f28, f1
                 addi x7, x7, 1
                 blt  x7, x13, cks
                 f2i  x28, f28
                 halt"
    );
    let bytes = u64::from(n) * 8;
    let w = with_buffer(build("stencil", Group::Fp, &asm), 0x25_0000, bytes);
    let w = with_buffer(w, 0x26_1040, bytes);
    with_buffer(w, 0x27_2080, bytes)
}

/// `taps`-tap FIR filter over an `n`-sample signal, `reps` times.
pub fn fir(n: u32, taps: u32, reps: u32) -> Workload {
    let total = n + taps;
    let asm = format!(
        "        li   x10, 0x270000     # signal ({total} samples)
                 li   x11, 0x281040     # coefficients (staggered)
                 li   x12, 0x292080     # output (staggered)
                 li   x13, {n}
                 li   x15, {taps}
                 li   x16, {total}
                 li   x7, 0
         init:   mul  x2, x7, x7
                 addi x2, x2, 1
                 andi x2, x2, 127
                 i2f  f1, x2
                 slli x9, x7, 3
                 add  x8, x9, x10
                 fsd  f1, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x16, init
                 li   x7, 0
         coef:   addi x2, x7, 1
                 i2f  f1, x2
                 li   x3, 1
                 i2f  f2, x3
                 fdiv f1, f2, f1        # h[t] = 1/(t+1)
                 slli x9, x7, 3
                 add  x8, x9, x11
                 fsd  f1, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x15, coef
                 li   x20, {reps}
                 li   x21, 0
         rep:    li   x7, 0
         outer:  i2f  f3, x0
                 li   x5, 0
         tap:    add  x2, x7, x5
                 slli x9, x2, 3
                 add  x8, x9, x10
                 fld  f1, 0(x8)
                 slli x9, x5, 3
                 add  x8, x9, x11
                 fld  f2, 0(x8)
                 fmul f4, f1, f2
                 fadd f3, f3, f4
                 addi x5, x5, 1
                 blt  x5, x15, tap
                 slli x9, x7, 3
                 add  x8, x9, x12
                 fsd  f3, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x13, outer
                 addi x21, x21, 1
                 blt  x21, x20, rep
                 li   x7, 0
                 i2f  f28, x0
         cks:    slli x9, x7, 3
                 add  x9, x9, x12
                 fld  f1, 0(x9)
                 fadd f28, f28, f1
                 addi x7, x7, 1
                 blt  x7, x13, cks
                 f2i  x28, f28
                 halt"
    );
    let w = with_buffer(
        build("fir", Group::Fp, &asm),
        0x27_0000,
        u64::from(total) * 8,
    );
    let w = with_buffer(w, 0x28_1040, u64::from(taps) * 8);
    with_buffer(w, 0x29_2080, u64::from(n) * 8)
}

/// One-dimensional n-body force accumulation (`steps` leapfrog steps):
/// divide- and square-root-heavy with all-pairs loads.
pub fn nbody(n: u32, steps: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x2A0000     # positions
                 li   x11, 0x2B1040     # velocities (staggered)
                 li   x13, {n}
                 # eps = 1/100, dt = 1/64
                 li   x2, 1
                 i2f  f9, x2
                 li   x2, 100
                 i2f  f10, x2
                 fdiv f10, f9, f10      # eps
                 li   x2, 64
                 i2f  f11, x2
                 fdiv f11, f9, f11      # dt
                 li   x7, 0
         init:   mul  x2, x7, x7
                 addi x2, x2, 7
                 andi x2, x2, 63
                 i2f  f1, x2
                 slli x9, x7, 3
                 add  x8, x9, x10
                 fsd  f1, 0(x8)
                 add  x8, x9, x11
                 i2f  f2, x0
                 fsd  f2, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x13, init
                 li   x20, {steps}
                 li   x21, 0
         step:   li   x3, 0             # i
         iloop:  slli x9, x3, 3
                 add  x8, x9, x10
                 fld  f1, 0(x8)         # p[i]
                 i2f  f5, x0            # force
                 li   x4, 0             # j
         jloop:  beq  x4, x3, skip
                 slli x9, x4, 3
                 add  x8, x9, x10
                 fld  f2, 0(x8)         # p[j]
                 fsub f3, f2, f1        # dx
                 fmul f4, f3, f3
                 fadd f4, f4, f10       # d2 + eps
                 fsqrt f6, f4
                 fmul f6, f6, f4        # d^3
                 fdiv f6, f3, f6        # dx / d^3
                 fadd f5, f5, f6
         skip:   addi x4, x4, 1
                 blt  x4, x13, jloop
                 slli x9, x3, 3
                 add  x8, x9, x11
                 fld  f7, 0(x8)
                 fmul f6, f5, f11
                 fadd f7, f7, f6
                 fsd  f7, 0(x8)
                 addi x3, x3, 1
                 blt  x3, x13, iloop
                 # integrate positions
                 li   x3, 0
         intg:   slli x9, x3, 3
                 add  x8, x9, x11
                 fld  f7, 0(x8)
                 fmul f6, f7, f11
                 slli x9, x3, 3
                 add  x8, x9, x10
                 fld  f1, 0(x8)
                 fadd f1, f1, f6
                 fsd  f1, 0(x8)
                 addi x3, x3, 1
                 blt  x3, x13, intg
                 addi x21, x21, 1
                 blt  x21, x20, step
                 li   x7, 0
                 i2f  f28, x0
         cks:    slli x9, x7, 3
                 add  x9, x9, x10
                 fld  f1, 0(x9)
                 fadd f28, f28, f1
                 addi x7, x7, 1
                 blt  x7, x13, cks
                 f2i  x28, f28
                 halt"
    );
    let bytes = u64::from(n) * 8;
    let w = with_buffer(build("nbody", Group::Fp, &asm), 0x2A_0000, bytes);
    with_buffer(w, 0x2B_1040, bytes)
}

/// A divide-dominated series: `sum 1/(1 + u_k^2)` for `iters` pseudo-random
/// `u_k`, binned into partial sums whose slot is derived from the *value*
/// `u` — so the bin store's address waits behind two FP divides while an
/// independent scan stream keeps younger loads flowing.
pub fn mc(iters: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x2C0000     # 64-slot partial-sum array
                 li   x12, 0x2D1040     # scan data (staggered)
                 li   x11, {iters}
                 li   x5, 777
                 li   x6, 1103515245
                 li   x13, 63
                 li   x2, 1
                 i2f  f9, x2            # 1.0
                 li   x2, 4096
                 i2f  f10, x2           # normalizer
                 li   x7, 0
                 i2f  f27, x0
         loop:   mul  x5, x5, x6
                 addi x5, x5, 12345
                 srli x4, x5, 20
                 andi x4, x4, 4095
                 i2f  f1, x4
                 fdiv f1, f1, f10       # u in [0,1)
                 fmul f2, f1, f1
                 fadd f2, f2, f9
                 fdiv f3, f9, f2        # 1/(1+u^2)
                 fadd f27, f27, f3      # running sum (checksum basis)
                 srli x3, x5, 32        # bin from the integer stream
                 and  x3, x3, x13
                 slli x9, x3, 3
                 add  x9, x9, x10
                 fld  f4, 0(x9)
                 fadd f4, f4, f3
                 fsd  f4, 0(x9)         # bin store: younger scan loads slip past
                 andi x4, x7, 63
                 bne  x4, x0, scan
                 srli x3, x7, 6         # rare monitor probe of a bin whose
                 and  x3, x3, x13       # address is ready far in advance:
                 slli x9, x3, 3         # it issues before older bin stores
                 add  x9, x9, x10       # resolve - a genuinely premature load
                 fld  f6, 0(x9)
                 fadd f27, f27, f6
         scan:   andi x9, x7, 63        # independent scan stream, 64B stride
                 slli x9, x9, 6
                 add  x9, x9, x12
                 fld  f6, 0(x9)
                 fadd f27, f27, f6
                 addi x7, x7, 1
                 blt  x7, x11, loop
                 li   x7, 0
                 i2f  f28, x0
         cks:    slli x9, x7, 3
                 add  x9, x9, x10
                 fld  f1, 0(x9)
                 fadd f28, f28, f1
                 addi x7, x7, 1
                 addi x2, x13, 1
                 blt  x7, x2, cks
                 f2i  x28, f28
                 halt"
    );
    let w = with_buffer(build("mc", Group::Fp, &asm), 0x2C_0000, 64 * 8);
    with_buffer(w, 0x2D_1040, 64 * 64)
}

/// Forward substitution on a dense lower-triangular system (`reps` solves).
pub fn tri(n: u32, reps: u32) -> Workload {
    let nn = n * n;
    let asm = format!(
        "        li   x10, 0x2E0000     # L (row-major)
                 li   x11, 0x2F1040     # b (staggered)
                 li   x12, 0x302080     # x (staggered)
                 li   x13, {n}
                 li   x14, {nn}
                 li   x7, 0
         initl:  i2f  f1, x0
                 # L[i][j]: 1 below diagonal, i+2 on it
                 li   x2, 0
                 # row = x7 / n, col = x7 % n
                 div  x3, x7, x13
                 mul  x4, x3, x13
                 sub  x4, x7, x4
                 bgt  x4, x3, store     # above diagonal: 0
                 li   x2, 1
                 bne  x4, x3, notdiag
                 addi x2, x3, 2
         notdiag: i2f f1, x2
         store:  slli x9, x7, 3
                 add  x8, x9, x10
                 fsd  f1, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x14, initl
                 li   x7, 0
         initb:  addi x2, x7, 1
                 i2f  f1, x2
                 slli x9, x7, 3
                 add  x8, x9, x11
                 fsd  f1, 0(x8)
                 addi x7, x7, 1
                 blt  x7, x13, initb
                 li   x20, {reps}
                 li   x21, 0
         rep:    li   x3, 0             # i
         row:    slli x9, x3, 3
                 add  x8, x9, x11
                 fld  f3, 0(x8)         # s = b[i]
                 li   x4, 0             # j
                 beq  x4, x3, diag
         col:    mul  x8, x3, x13
                 add  x8, x8, x4
                 slli x8, x8, 3
                 add  x8, x8, x10
                 fld  f1, 0(x8)         # L[i][j]
                 slli x9, x4, 3
                 add  x8, x9, x12
                 fld  f2, 0(x8)         # x[j]
                 fmul f4, f1, f2
                 fsub f3, f3, f4
                 addi x4, x4, 1
                 blt  x4, x3, col
         diag:   mul  x8, x3, x13
                 add  x8, x8, x3
                 slli x8, x8, 3
                 add  x8, x8, x10
                 fld  f1, 0(x8)         # L[i][i]
                 fdiv f3, f3, f1
                 slli x9, x3, 3
                 add  x8, x9, x12
                 fsd  f3, 0(x8)
                 addi x3, x3, 1
                 blt  x3, x13, row
                 addi x21, x21, 1
                 blt  x21, x20, rep
                 li   x7, 0
                 i2f  f28, x0
         cks:    slli x9, x7, 3
                 add  x9, x9, x12
                 fld  f1, 0(x9)
                 fadd f28, f28, f1
                 addi x7, x7, 1
                 blt  x7, x13, cks
                 f2i  x28, f28
                 halt"
    );
    let w = with_buffer(build("tri", Group::Fp, &asm), 0x2E_0000, u64::from(nn) * 8);
    let w = with_buffer(w, 0x2F_1040, u64::from(n) * 8);
    with_buffer(w, 0x30_2080, u64::from(n) * 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_isa::Emulator;

    #[test]
    fn mm_checksum_is_stable_across_reps() {
        // C = A*B is idempotent across reps (same inputs), so the checksum
        // must not depend on the repeat count.
        let once = {
            let w = mm(6, 1);
            let mut e = Emulator::new(&w.program);
            e.run(10_000_000).unwrap();
            e.fp_reg(28)
        };
        let thrice = {
            let w = mm(6, 3);
            let mut e = Emulator::new(&w.program);
            e.run(10_000_000).unwrap();
            e.fp_reg(28)
        };
        assert_eq!(once, thrice);
        assert!(once > 0.0);
    }

    #[test]
    fn mm_small_case_is_correct() {
        // n=1: A=[0], B=[3] -> C=[0]; checksum 0. n irrelevantly small but
        // verifies indexing. Use n=2 for a real check:
        // A = [0 1; 2 3], B = [3 4; 5 6], C = A*B = [5 6; 21 26], sum = 58.
        let w = mm(2, 1);
        let mut e = Emulator::new(&w.program);
        e.run(1_000_000).unwrap();
        assert_eq!(e.fp_reg(28), 58.0);
    }

    #[test]
    fn saxpy_result_is_analytic() {
        // x[i] = i, y[i] = -i, one sweep: y[i] = -i + 1.5i = 0.5i.
        // Sum over 0..n of 0.5i = 0.5 * n(n-1)/2.
        let n = 32u32;
        let w = saxpy(n, 1);
        let mut e = Emulator::new(&w.program);
        e.run(1_000_000).unwrap();
        let expect = 0.5 * (n as f64 * (n as f64 - 1.0) / 2.0);
        assert!(
            (e.fp_reg(28) - expect).abs() < 1e-9,
            "{} vs {expect}",
            e.fp_reg(28)
        );
    }

    #[test]
    fn stencil_conserves_plausibly() {
        let w = stencil(32, 2);
        let mut e = Emulator::new(&w.program);
        e.run(10_000_000).unwrap();
        let s = e.fp_reg(28);
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn nbody_velocities_stay_finite() {
        let w = nbody(8, 2);
        let mut e = Emulator::new(&w.program);
        e.run(10_000_000).unwrap();
        assert!(e.fp_reg(28).is_finite());
    }

    #[test]
    fn tri_solves_the_system() {
        // Forward substitution must satisfy L x = b; spot-check row 0:
        // L[0][0] = 2, b[0] = 1 -> x[0] = 0.5.
        let w = tri(6, 1);
        let mut e = Emulator::new(&w.program);
        e.run(10_000_000).unwrap();
        let x0 = e
            .memory()
            .read(dmdc_types::Addr(0x30_2080), dmdc_types::AccessSize::B8);
        assert_eq!(f64::from_bits(x0), 0.5);
    }

    #[test]
    fn mc_approximates_pi_over_4_scaled() {
        // sum of 1/(1+u^2) for uniform u approximates iters * pi/4.
        let iters = 4000u32;
        let w = mc(iters);
        let mut e = Emulator::new(&w.program);
        e.run(50_000_000).unwrap();
        let mean = e.fp_reg(28) / iters as f64;
        assert!(
            (mean - std::f64::consts::FRAC_PI_4).abs() < 0.02,
            "mean {mean}"
        );
    }
}
