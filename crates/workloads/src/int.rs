//! The integer suite: pointer-heavy, branch-heavy kernels in the spirit of
//! SPECint. Each kernel leaves a checksum in `x28`.
//!
//! Data-segment bases are spread across the address space so kernels are
//! individually relocatable and the invalidation injector sees a realistic
//! footprint (all buffers are pre-declared, zero-filled).

use dmdc_types::Addr;

use crate::{build, Group, Workload};

const LCG_MUL: &str = "1103515245";

/// Open-addressing hash table: insert/update `iters` keys drawn from a
/// 512-key space into a 1024-slot table with linear probing. Every
/// iteration ends with a store immediately re-read (forwarding pressure).
pub fn hash(iters: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x100000    # table: 4096 slots x 16B (64KB: misses L1)
                 li   x11, {iters}
                 li   x5, 123456789
                 li   x6, {LCG_MUL}
                 li   x13, 4095
                 li   x14, 511
                 li   x15, 40503
                 li   x17, 0x111040    # scan array (staggered vs table mod table-size)
                 li   x7, 0
                 li   x28, 0
                 li   x2, 0
                 mv   x16, x10
         loop:   mul  x5, x5, x6
                 addi x5, x5, 12345
                 srli x4, x5, 13
                 xor  x4, x4, x2       # key depends on the last looked-up value
                 and  x4, x4, x14
                 addi x4, x4, 1        # key in [1, 512]
                 mul  x8, x4, x15
                 and  x8, x8, x13      # home slot
         probe:  slli x9, x8, 4
                 add  x9, x9, x10
                 ld   x3, 0(x9)
                 beq  x3, x0, insert
                 beq  x3, x4, update
                 addi x8, x8, 1
                 and  x8, x8, x13
                 j    probe
         insert: sd   x4, 0(x9)
         update: sd   x7, 8(x9)        # store address came through loads: late
                 ld   x2, 8(x9)        # read back the value just stored
                 add  x28, x28, x2
                 andi x3, x7, 255
                 bne  x3, x0, scan
                 ld   x3, 8(x16)       # rare audit re-read of the previous
                 add  x28, x28, x3     # slot: lands in its checking window
         scan:   mv   x16, x9
                 andi x9, x7, 127      # independent scan stream, 64B stride
                 slli x9, x9, 6
                 add  x9, x9, x17
                 ld   x3, 0(x9)
                 add  x28, x28, x3
                 addi x7, x7, 1
                 blt  x7, x11, loop
                 halt"
    );
    let w = with_buffer(build("hash", Group::Int, &asm), 0x10_0000, 4096 * 16);
    with_buffer(w, 0x11_1040, 128 * 64)
}

/// Odd-even transposition sort: `passes` bubble passes over an `n`-element
/// array of pseudo-random 64-bit values, then a checksum sweep. Adjacent
/// swap stores feed the next iteration's loads directly.
pub fn sort(n: u32, passes: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x110000
                 li   x11, {n}
                 li   x12, {passes}
                 li   x5, 42
                 li   x6, {LCG_MUL}
                 li   x7, 0
         fill:   mul  x5, x5, x6
                 addi x5, x5, 12345
                 srli x4, x5, 16
                 slli x9, x7, 3
                 add  x9, x9, x10
                 sd   x4, 0(x9)
                 addi x7, x7, 1
                 blt  x7, x11, fill
                 li   x13, 0
                 addi x14, x11, -1
         pass:   li   x7, 0
         inner:  slli x9, x7, 3
                 add  x9, x9, x10
                 ld   x2, 0(x9)
                 ld   x3, 8(x9)
                 ble  x2, x3, noswap
                 sd   x3, 0(x9)
                 sd   x2, 8(x9)
         noswap: addi x7, x7, 1
                 blt  x7, x14, inner
                 addi x13, x13, 1
                 blt  x13, x12, pass
                 li   x7, 0
                 li   x28, 0
         cks:    slli x9, x7, 3
                 add  x9, x9, x10
                 ld   x2, 0(x9)
                 add  x28, x28, x2
                 addi x7, x7, 1
                 blt  x7, x11, cks
                 halt"
    );
    with_buffer(build("sort", Group::Int, &asm), 0x11_0000, u64::from(n) * 8)
}

/// Linked list: build `n` nodes, then alternately traverse (summing
/// payloads) and reverse the list in place, `iters` times. Pure pointer
/// chasing with serial load-to-load dependences.
pub fn list(n: u32, iters: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x120000    # nodes: 16B each
                 li   x11, {n}
                 li   x7, 0
         build:  slli x9, x7, 4
                 add  x9, x9, x10
                 addi x5, x7, 1
                 slli x5, x5, 4
                 add  x5, x5, x10
                 sd   x5, 0(x9)
                 sd   x7, 8(x9)
                 addi x7, x7, 1
                 blt  x7, x11, build
                 addi x7, x11, -1
                 slli x9, x7, 4
                 add  x9, x9, x10
                 sd   x0, 0(x9)
                 mv   x20, x10         # head
                 li   x12, {iters}
                 li   x13, 0
                 li   x28, 0
         iter:   mv   x6, x20
         trav:   ld   x2, 8(x6)
                 add  x28, x28, x2
                 ld   x6, 0(x6)
                 bne  x6, x0, trav
                 li   x5, 0
                 li   x21, 0
                 mv   x6, x20
         rev:    ld   x2, 0(x6)
                 sd   x5, 0(x6)        # next-pointer store: address chased
                 andi x4, x21, 31      # independent payload scan alongside
                 slli x4, x4, 4
                 add  x4, x4, x10
                 ld   x9, 8(x4)
                 add  x28, x28, x9
                 addi x21, x21, 1
                 mv   x5, x6
                 mv   x6, x2
                 bne  x6, x0, rev
                 mv   x20, x5
                 addi x13, x13, 1
                 blt  x13, x12, iter
                 halt"
    );
    with_buffer(
        build("list", Group::Int, &asm),
        0x12_0000,
        (u64::from(n) + 1) * 16,
    )
}

/// Bit-serial CRC-32 over a `len`-byte pseudo-random buffer, `rounds`
/// times. The inner bit loop's branch is data-dependent and essentially
/// unpredictable.
pub fn crc(len: u32, rounds: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x130000
                 li   x11, {len}
                 li   x5, 7
                 li   x6, {LCG_MUL}
                 li   x7, 0
         fill:   mul  x5, x5, x6
                 addi x5, x5, 12345
                 srli x4, x5, 9
                 add  x9, x10, x7
                 sb   x4, 0(x9)
                 addi x7, x7, 1
                 blt  x7, x11, fill
                 # polynomial 0xEDB88320 built from 16-bit pieces
                 li   x15, 0xEDB8
                 slli x15, x15, 16
                 li   x16, 0x832
                 slli x16, x16, 4
                 or   x15, x15, x16
                 li   x12, {rounds}
                 li   x13, 0
                 li   x28, -1
         round:  li   x7, 0
         byte:   add  x9, x10, x7
                 lbu  x4, 0(x9)
                 xor  x28, x28, x4
                 li   x8, 8
         bit:    andi x3, x28, 1
                 srli x28, x28, 1
                 beq  x3, x0, nobit
                 xor  x28, x28, x15
         nobit:  addi x8, x8, -1
                 bne  x8, x0, bit
                 addi x7, x7, 1
                 blt  x7, x11, byte
                 addi x13, x13, 1
                 blt  x13, x12, round
                 halt"
    );
    with_buffer(build("crc", Group::Int, &asm), 0x13_0000, u64::from(len))
}

/// Kernighan population count over a pseudo-random stream, histogramming
/// the counts (read-modify-write memory traffic on a tiny table).
pub fn bitcnt(iters: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x140000    # 64-bin histogram
                 li   x11, {iters}
                 li   x5, 99
                 li   x6, {LCG_MUL}
                 li   x7, 0
                 li   x28, 0
         loop:   mul  x5, x5, x6
                 addi x5, x5, 12345
                 mv   x4, x5
                 li   x8, 0
         pop:    addi x3, x4, -1
                 and  x4, x4, x3
                 addi x8, x8, 1
                 bne  x4, x0, pop
                 add  x28, x28, x8
                 andi x9, x8, 63
                 slli x9, x9, 3
                 add  x9, x9, x10
                 ld   x2, 0(x9)
                 addi x2, x2, 1
                 sd   x2, 0(x9)
                 addi x7, x7, 1
                 blt  x7, x11, loop
                 halt"
    );
    with_buffer(build("bitcnt", Group::Int, &asm), 0x14_0000, 64 * 8)
}

/// Naive substring search for the pattern `abca` in a `len`-byte text over
/// a 4-letter alphabet, `rounds` scans. Byte loads and early-out compares.
pub fn strmatch(len: u32, rounds: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x150000
                 li   x11, {len}
                 li   x5, 31
                 li   x6, {LCG_MUL}
                 li   x7, 0
         fill:   mul  x5, x5, x6
                 addi x5, x5, 12345
                 srli x4, x5, 11
                 andi x4, x4, 3
                 addi x4, x4, 97       # 'a'..'d'
                 add  x9, x10, x7
                 sb   x4, 0(x9)
                 addi x7, x7, 1
                 blt  x7, x11, fill
                 li   x15, 97
                 li   x16, 98
                 li   x17, 99
                 li   x12, {rounds}
                 li   x13, 0
                 li   x28, 0
                 addi x14, x11, -3
         round:  li   x7, 0
         outer:  add  x9, x10, x7
                 lbu  x2, 0(x9)
                 bne  x2, x15, miss
                 lbu  x2, 1(x9)
                 bne  x2, x16, miss
                 lbu  x2, 2(x9)
                 bne  x2, x17, miss
                 lbu  x2, 3(x9)
                 bne  x2, x15, miss
                 addi x28, x28, 1
         miss:   addi x7, x7, 1
                 blt  x7, x14, outer
                 addi x13, x13, 1
                 blt  x13, x12, round
                 halt"
    );
    with_buffer(
        build("strmatch", Group::Int, &asm),
        0x15_0000,
        u64::from(len),
    )
}

/// Histogramming over a pointer-chased index stream: the bucket address
/// depends on a serial permutation chase (so the store's address resolves
/// late), while an independent scan stream keeps younger loads issuing in
/// the meantime — the premature-load scenario the paper's mechanisms exist
/// for. The footprint exceeds L1, adding miss-latency jitter.
pub fn histo(iters: u32) -> Workload {
    let asm = format!(
        "        li   x10, 0x160000    # idx: 2048-entry permutation
                 li   x12, 0x165040    # hist: 2048 buckets (staggered)
                 li   x11, 0x16a080    # scan data (staggered)
                 li   x13, 2047
                 li   x14, {iters}
                 li   x7, 0
                 li   x6, 1021
         fill:   mul  x2, x7, x6
                 addi x2, x2, 13
                 and  x2, x2, x13
                 slli x9, x7, 3
                 add  x9, x9, x10
                 sd   x2, 0(x9)
                 addi x7, x7, 1
                 ble  x7, x13, fill
                 li   x7, 0
                 li   x3, 0            # j
                 li   x28, 0
                 mv   x16, x12
         loop:   slli x9, x3, 3
                 add  x9, x9, x10
                 ld   x3, 0(x9)        # j = idx[j]: serial chase
                 slli x9, x3, 3
                 add  x9, x9, x12
                 ld   x2, 0(x9)
                 addi x2, x2, 1
                 sd   x2, 0(x9)        # bucket store: address late
                 add  x28, x28, x2
                 andi x4, x7, 15
                 bne  x4, x0, scan
                 ld   x4, 0(x16)       # rare audit of the previous bucket:
                 add  x28, x28, x4     # often still inside its window
         scan:   mv   x16, x9
                 andi x4, x7, 127
                 slli x4, x4, 6        # 64B stride: a single YLA bank
                 add  x4, x4, x11
                 ld   x5, 0(x4)        # independent scan load
                 add  x28, x28, x5
                 addi x7, x7, 1
                 blt  x7, x14, loop
                 halt"
    );
    let w = with_buffer(build("histo", Group::Int, &asm), 0x16_0000, 2048 * 8);
    let w = with_buffer(w, 0x16_5040, 2048 * 8);
    with_buffer(w, 0x16_A080, 128 * 64)
}

/// Attaches a zero-filled data segment so the buffer is part of the
/// program's declared footprint.
pub(crate) fn with_buffer(w: Workload, base: u64, bytes: u64) -> Workload {
    Workload {
        name: w.name,
        group: w.group,
        program: w.program.with_data(Addr(base), vec![0u8; bytes as usize]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_isa::Emulator;
    use dmdc_types::{AccessSize, Addr};

    #[test]
    fn sort_actually_sorts() {
        let w = sort(64, 64); // enough passes to fully sort 64 elements
        let mut emu = Emulator::new(&w.program);
        emu.run(10_000_000).unwrap();
        let mut prev = 0u64;
        for i in 0..64u64 {
            let v = emu.memory().read(Addr(0x11_0000 + i * 8), AccessSize::B8);
            assert!(v >= prev, "array not sorted at index {i}");
            prev = v;
        }
    }

    #[test]
    fn hash_terminates_with_bounded_probes() {
        let w = hash(3000); // 512 distinct keys, 1024 slots: always room
        let mut emu = Emulator::new(&w.program);
        let retired = emu.run(10_000_000).unwrap();
        assert!(retired > 3000 * 10);
    }

    #[test]
    fn list_reversal_preserves_sum() {
        let w = list(32, 4);
        let mut emu = Emulator::new(&w.program);
        emu.run(10_000_000).unwrap();
        // Each iteration: a traversal sum of 0..32 plus the 32 payload scan
        // reads during reversal (payloads are position-independent).
        assert_eq!(emu.int_reg(28), 4 * 2 * (31 * 32 / 2));
    }

    #[test]
    fn strmatch_finds_some_matches() {
        let w = strmatch(2048, 1);
        let mut emu = Emulator::new(&w.program);
        emu.run(10_000_000).unwrap();
        // Expected ~2048/256 = 8 matches of a 4-symbol pattern over a
        // 4-letter alphabet; anything nonzero and sane passes.
        let matches = emu.int_reg(28);
        assert!(
            matches > 0 && matches < 100,
            "implausible match count {matches}"
        );
    }

    #[test]
    fn histo_counts_every_iteration() {
        let w = histo(500);
        let mut emu = Emulator::new(&w.program);
        emu.run(10_000_000).unwrap();
        let total: u64 = (0..2048u64)
            .map(|i| emu.memory().read(Addr(0x16_5040 + i * 8), AccessSize::B8))
            .sum();
        assert_eq!(total, 500, "one bucket increment per iteration");
    }

    #[test]
    fn crc_is_deterministic() {
        let a = {
            let w = crc(64, 1);
            let mut emu = Emulator::new(&w.program);
            emu.run(10_000_000).unwrap();
            emu.int_reg(28)
        };
        let b = {
            let w = crc(64, 1);
            let mut emu = Emulator::new(&w.program);
            emu.run(10_000_000).unwrap();
            emu.int_reg(28)
        };
        assert_eq!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn bitcnt_histogram_totals() {
        let w = bitcnt(300);
        let mut emu = Emulator::new(&w.program);
        emu.run(10_000_000).unwrap();
        let total: u64 = (0..64u64)
            .map(|i| emu.memory().read(Addr(0x14_0000 + i * 8), AccessSize::B8))
            .sum();
        assert_eq!(total, 300, "one histogram hit per iteration");
    }
}
