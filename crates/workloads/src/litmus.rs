//! Multi-threaded litmus kernels and false-sharing torture loops.
//!
//! The classic four-box litmus tests (MP, SB, LB, IRIW) pin down the
//! consistency contract of the multi-core timing simulator: each kernel
//! names the registers to observe and the outcome vectors a sequentially
//! consistent machine must never produce. The harness in `tests/litmus.rs`
//! checks the timing simulator's observed outcomes against the allowed set
//! computed by `dmdc_isa::enumerate_outcomes` — the operational reference —
//! and asserts the forbidden vectors never appear.
//!
//! [`mt_share`] builds the organic-contention counterpart: two cores
//! ping-ponging a shared cache line at a controllable rate, the workload
//! behind the `multicore` experiment's coherent-traffic sweep.

use dmdc_isa::Program;
use dmdc_types::Addr;

use crate::build;
use crate::Group;

/// Address of the litmus variable conventionally called X.
const X: u64 = 0x2000;
/// Address of the litmus variable conventionally called Y (a different
/// cache line from X under every line size the configs use).
const Y: u64 = 0x2100;

/// A named multi-threaded litmus test: one program per core, the
/// `(core, register)` observer vector, and the outcomes sequential
/// consistency forbids.
///
/// # Examples
///
/// ```
/// use dmdc_workloads::litmus_suite;
/// use dmdc_isa::{enumerate_outcomes, EnumLimits};
///
/// for k in litmus_suite() {
///     let allowed =
///         enumerate_outcomes(&k.program_refs(), &k.observers, EnumLimits::default()).unwrap();
///     for f in &k.forbidden {
///         assert!(!allowed.contains(f), "{}: {:?} must not be SC-reachable", k.name, f);
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct LitmusKernel {
    /// Conventional litmus-test name ("MP", "SB", ...).
    pub name: &'static str,
    /// One program per core.
    pub programs: Vec<Program>,
    /// `(core, integer register)` pairs read after every core halts.
    pub observers: Vec<(usize, u8)>,
    /// Observer vectors that must never occur under sequential consistency.
    pub forbidden: Vec<Vec<u64>>,
}

impl LitmusKernel {
    /// The programs as a slice-of-refs, the shape `run_multicore` and
    /// `enumerate_outcomes` take.
    pub fn program_refs(&self) -> Vec<&Program> {
        self.programs.iter().collect()
    }
}

fn prog(name: &'static str, src: &str) -> Program {
    build(name, Group::Int, src).program
}

/// Backs both litmus variables with one zeroed data segment (attached to
/// the first program; shared memory is the union of every core's segments).
fn with_litmus_data(p: Program) -> Program {
    p.with_data(Addr(X), vec![0u8; 512])
}

/// Message passing: P0 publishes data then a flag; P1 polls the flag then
/// reads the data. Seeing the flag without the data (`[1, 0]`) is the
/// canonical consistency violation.
fn mp() -> LitmusKernel {
    let p0 = with_litmus_data(prog(
        "mp",
        &format!(
            "li x1, {X:#x}\nli x2, {Y:#x}\nli x3, 1\n\
             sw x3, 0(x1)\nsw x3, 0(x2)\nhalt"
        ),
    ));
    let p1 = prog(
        "mp",
        &format!("li x1, {X:#x}\nli x2, {Y:#x}\nlw x20, 0(x2)\nlw x21, 0(x1)\nhalt"),
    );
    LitmusKernel {
        name: "MP",
        programs: vec![p0, p1],
        observers: vec![(1, 20), (1, 21)],
        forbidden: vec![vec![1, 0]],
    }
}

/// Store buffering: each core stores its own variable then loads the
/// other's. Both loads reading the initial value (`[0, 0]`) requires the
/// stores to pass their own core's loads — legal under TSO, never under SC.
fn sb() -> LitmusKernel {
    let body = |own: u64, other: u64| {
        format!(
            "li x1, {own:#x}\nli x2, {other:#x}\nli x3, 1\n\
             sw x3, 0(x1)\nlw x20, 0(x2)\nhalt"
        )
    };
    let p0 = with_litmus_data(prog("sb", &body(X, Y)));
    let p1 = prog("sb", &body(Y, X));
    LitmusKernel {
        name: "SB",
        programs: vec![p0, p1],
        observers: vec![(0, 20), (1, 20)],
        forbidden: vec![vec![0, 0]],
    }
}

/// Load buffering: each core loads one variable then stores the other.
/// Both loads returning 1 (`[1, 1]`) requires each load to read from a
/// store that is program-order *after* the other load — a causal cycle.
fn lb() -> LitmusKernel {
    let body = |from: u64, to: u64| {
        format!(
            "li x1, {from:#x}\nli x2, {to:#x}\n\
             lw x20, 0(x1)\nli x3, 1\nsw x3, 0(x2)\nhalt"
        )
    };
    let p0 = with_litmus_data(prog("lb", &body(X, Y)));
    let p1 = prog("lb", &body(Y, X));
    LitmusKernel {
        name: "LB",
        programs: vec![p0, p1],
        observers: vec![(0, 20), (1, 20)],
        forbidden: vec![vec![1, 1]],
    }
}

/// Independent reads of independent writes: two writers, two readers
/// reading in opposite orders. The readers disagreeing on the write order
/// (`[1, 0, 1, 0]`) violates the single total store order SC (and multi-
/// copy atomicity) requires.
fn iriw() -> LitmusKernel {
    let writer = |addr: u64| format!("li x1, {addr:#x}\nli x3, 1\nsw x3, 0(x1)\nhalt");
    let reader = |first: u64, second: u64| {
        format!(
            "li x1, {first:#x}\nli x2, {second:#x}\n\
             lw x20, 0(x1)\nlw x21, 0(x2)\nhalt"
        )
    };
    let p0 = with_litmus_data(prog("iriw", &writer(X)));
    let p1 = prog("iriw", &writer(Y));
    let p2 = prog("iriw", &reader(X, Y));
    let p3 = prog("iriw", &reader(Y, X));
    LitmusKernel {
        name: "IRIW",
        programs: vec![p0, p1, p2, p3],
        observers: vec![(2, 20), (2, 21), (3, 20), (3, 21)],
        forbidden: vec![vec![1, 0, 1, 0]],
    }
}

/// The four classic litmus kernels: MP, SB, LB and IRIW (the last on four
/// cores, the rest on two).
pub fn litmus_suite() -> Vec<LitmusKernel> {
    vec![mp(), sb(), lb(), iriw()]
}

/// A two-core false-sharing kernel: both cores share one cache line, each
/// storing its changing loop counter into its own slot and summing the
/// other's into `x28`. `period` ALU instructions of private work separate
/// consecutive shared rounds, so smaller periods mean denser coherence
/// traffic — the contention knob the `multicore` experiment sweeps.
#[derive(Debug, Clone)]
pub struct SharingKernel {
    /// "mt_share_p{period}".
    pub name: String,
    /// One program per core (the shared line's data segment rides on the
    /// first).
    pub programs: Vec<Program>,
    /// Private ALU instructions between shared rounds.
    pub period: u32,
}

impl SharingKernel {
    /// The programs as a slice-of-refs.
    pub fn program_refs(&self) -> Vec<&Program> {
        self.programs.iter().collect()
    }
}

/// Builds a [`SharingKernel`] doing `iters` shared rounds with `period`
/// private ALU instructions between them.
///
/// # Examples
///
/// ```
/// use dmdc_workloads::mt_share;
/// use dmdc_isa::SharedSystem;
///
/// let k = mt_share(50, 4);
/// let mut sys = SharedSystem::new(&k.program_refs());
/// while !sys.all_halted() {
///     for i in 0..sys.num_cores() {
///         sys.step_core(i).unwrap();
///     }
/// }
/// ```
pub fn mt_share(iters: u32, period: u32) -> SharingKernel {
    let filler: String = (0..period).map(|_| "addi x28, x28, 1\n").collect();
    let body = |own: u64, other: u64| {
        format!(
            "li x1, {own:#x}\nli x5, {other:#x}\nli x3, 0\nli x4, {iters}\n\
             loop: {filler}sd x3, 0(x1)\nld x6, 0(x5)\nadd x28, x28, x6\n\
             addi x3, x3, 1\nblt x3, x4, loop\nhalt"
        )
    };
    let p0 = prog("mt_share", &body(X, X + 8)).with_data(Addr(X), vec![0u8; 64]);
    let p1 = prog("mt_share", &body(X + 8, X));
    SharingKernel {
        name: format!("mt_share_p{period}"),
        programs: vec![p0, p1],
        period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_isa::{enumerate_outcomes, EnumLimits, SharedSystem};

    #[test]
    fn suite_shape() {
        let suite = litmus_suite();
        let names: Vec<_> = suite.iter().map(|k| k.name).collect();
        assert_eq!(names, ["MP", "SB", "LB", "IRIW"]);
        for k in &suite {
            assert_eq!(
                k.programs.len(),
                if k.name == "IRIW" { 4 } else { 2 },
                "{}",
                k.name
            );
            for f in &k.forbidden {
                assert_eq!(f.len(), k.observers.len(), "{}", k.name);
            }
        }
    }

    #[test]
    fn reference_allows_sc_and_rejects_forbidden() {
        for k in litmus_suite() {
            let allowed =
                enumerate_outcomes(&k.program_refs(), &k.observers, EnumLimits::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(!allowed.is_empty(), "{}: no outcomes", k.name);
            for f in &k.forbidden {
                assert!(
                    !allowed.contains(f),
                    "{}: forbidden {:?} is SC-reachable",
                    k.name,
                    f
                );
            }
        }
    }

    #[test]
    fn reference_sets_contain_canonical_outcomes() {
        let suite = litmus_suite();
        let allowed_of = |name: &str| {
            let k = suite.iter().find(|k| k.name == name).unwrap();
            enumerate_outcomes(&k.program_refs(), &k.observers, EnumLimits::default()).unwrap()
        };
        // MP: fully-before and fully-after interleavings.
        let mp = allowed_of("MP");
        assert!(mp.contains(&vec![1, 1]));
        assert!(mp.contains(&vec![0, 0]));
        // SB: one store always precedes both loads, so at least one 1.
        let sb = allowed_of("SB");
        assert!(sb.contains(&vec![1, 1]));
        assert!(sb.contains(&vec![0, 1]) && sb.contains(&vec![1, 0]));
        // LB: loads before any store.
        assert!(allowed_of("LB").contains(&vec![0, 0]));
        // IRIW: both readers agreeing on the order is fine.
        let iriw = allowed_of("IRIW");
        assert!(iriw.contains(&vec![1, 1, 1, 1]));
        assert!(iriw.contains(&vec![0, 0, 0, 0]));
    }

    #[test]
    fn mt_share_halts_and_checksums() {
        let k = mt_share(30, 4);
        assert_eq!(k.name, "mt_share_p4");
        let mut sys = SharedSystem::new(&k.program_refs());
        let mut guard = 0;
        while !sys.all_halted() {
            for i in 0..sys.num_cores() {
                sys.step_core(i).unwrap();
            }
            guard += 1;
            assert!(guard < 100_000, "mt_share did not halt");
        }
        // Round-robin stepping interleaves the counters; both sums must be
        // nonzero (each core saw the other's progress).
        assert!(sys.core(0).int_reg(28) > 0);
        assert!(sys.core(1).int_reg(28) > 0);
    }

    #[test]
    fn mt_share_period_scales_code_size() {
        let tight = mt_share(10, 1);
        let loose = mt_share(10, 64);
        assert!(
            loose.programs[0].len() > tight.programs[0].len() + 60,
            "period adds private work"
        );
    }
}
