//! Coherence-traffic study (paper §6.2.4 / Table 6): inject external
//! invalidations at increasing rates and watch DMDC's checking pressure,
//! false replays and slowdown respond.
//!
//! ```sh
//! cargo run --release --example invalidations
//! ```

use dmdc::core::experiments::{run_workload, PolicyKind};
use dmdc::core::report::Table;
use dmdc::ooo::{CoreConfig, SimOptions};
use dmdc::workloads::{Scale, SyntheticKernel};

fn main() {
    let config = CoreConfig::config2();
    // A dependence-heavy synthetic kernel with a known footprint.
    let w = SyntheticKernel::new(60_000)
        .addr_bits(10)
        .store_load_gap(3)
        .branch_noise(true)
        .build();
    let base = run_workload(&w, &config, &PolicyKind::Baseline, SimOptions::default());

    let mut t = Table::new("DMDC under injected invalidations (synthetic kernel)");
    t.headers([
        "inv/1k cycles",
        "invalidations",
        "% cycles checking",
        "replays/1M",
        "slowdown",
    ]);
    for rate in [0.0, 1.0, 10.0, 100.0] {
        let opts = SimOptions {
            inval_per_kcycle: rate,
            inval_seed: 3,
            ..SimOptions::default()
        };
        let r = run_workload(&w, &config, &PolicyKind::DmdcCoherent, opts);
        t.row([
            format!("{rate:.0}"),
            r.stats.policy.invalidations.to_string(),
            format!(
                "{:.1}%",
                r.stats.policy.checking_mode_cycles as f64 / r.stats.cycles as f64 * 100.0
            ),
            format!("{:.1}", r.stats.per_million(r.stats.policy.replays.total())),
            format!(
                "{:+.2}%",
                (r.stats.cycles as f64 / base.stats.cycles as f64 - 1.0) * 100.0
            ),
        ]);
    }
    println!("{t}");
    println!("(Full-suite Table 6 regeneration: cargo bench --bench table6_invalidations)");

    // The paper's suite-level Table 6, at smoke scale so this example stays
    // quick; crank DMDC_SCALE for the real thing.
    if std::env::var("DMDC_TABLE6").is_ok() {
        println!("{}", dmdc::core::experiments::table6(Scale::Smoke).render());
    }
}
