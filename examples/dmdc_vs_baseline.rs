//! Per-workload comparison of DMDC against the conventional design:
//! timing, replays, and energy — the drill-down behind Figure 4.
//!
//! ```sh
//! cargo run --release --example dmdc_vs_baseline
//! ```

use dmdc::core::experiments::{run_workload, PolicyKind};
use dmdc::core::report::Table;
use dmdc::energy::EnergyModel;
use dmdc::ooo::{CoreConfig, SimOptions};
use dmdc::workloads::{full_suite, Scale};

fn main() {
    let config = CoreConfig::config2();
    let base_kind = PolicyKind::Baseline;
    let dmdc_kind = PolicyKind::DmdcGlobal;

    let mut t = Table::new("DMDC vs conventional, per workload (config 2)");
    t.headers([
        "workload",
        "group",
        "base IPC",
        "dmdc IPC",
        "slowdown",
        "false replays/1M",
        "safe stores",
        "LQ energy saved",
        "net saved",
    ]);
    for w in &full_suite(Scale::Default) {
        let base = run_workload(w, &config, &base_kind, SimOptions::default());
        let dmdc = run_workload(w, &config, &dmdc_kind, SimOptions::default());
        let be = EnergyModel::with_geometry(base_kind.geometry(&config)).evaluate(&base.stats);
        let de = EnergyModel::with_geometry(dmdc_kind.geometry(&config)).evaluate(&dmdc.stats);
        t.row([
            w.name.to_string(),
            w.group.to_string(),
            format!("{:.2}", base.stats.ipc()),
            format!("{:.2}", dmdc.stats.ipc()),
            format!(
                "{:+.2}%",
                (dmdc.stats.cycles as f64 / base.stats.cycles as f64 - 1.0) * 100.0
            ),
            format!(
                "{:.1}",
                dmdc.stats
                    .per_million(dmdc.stats.policy.replays.false_total())
            ),
            format!("{:.1}%", dmdc.stats.policy.store_filter_rate() * 100.0),
            format!(
                "{:.1}%",
                (1.0 - de.lq_functionality() / be.lq_functionality()) * 100.0
            ),
            format!("{:.1}%", (1.0 - de.total() / be.total()) * 100.0),
        ]);
    }
    println!("{t}");
}
