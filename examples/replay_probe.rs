//! Scratch diagnostic: replay classification per workload under DMDC.
use dmdc_core::experiments::{run_workload, PolicyKind};
use dmdc_ooo::{CoreConfig, SimOptions};
use dmdc_workloads::{full_suite, Scale};

fn main() {
    let config = CoreConfig::config2();
    for w in &full_suite(Scale::Default) {
        let r = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        let b = r.stats.policy.replays;
        if b.total() == 0 {
            continue;
        }
        println!(
            "{:10} true {:4}  addrX {:4} addrY {:4}  hashB {:4} hashX {:4} hashY {:4}  (commits {})",
            w.name, b.true_violation, b.false_addr_x, b.false_addr_y,
            b.false_hash_before, b.false_hash_x, b.false_hash_y, r.stats.committed
        );
    }
}
