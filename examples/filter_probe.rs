//! Diagnostic: per-workload YLA filter rates at several register counts,
//! plus the ingredients behind them (issue-order overlap, cache misses,
//! checking-window shape). Not one of the paper's figures — a tool for
//! understanding and calibrating the workload suite.

use dmdc_core::experiments::{run_workload, PolicyKind};
use dmdc_ooo::{CoreConfig, SimOptions};
use dmdc_workloads::{full_suite, Scale};

fn main() {
    let config = CoreConfig::config2();
    let suite = full_suite(Scale::Default);
    println!(
        "{:10} {:>9} {:>6}  {:>7} {:>7} {:>7}  {:>7} {:>7} {:>8} {:>8}",
        "workload",
        "instrs",
        "ipc",
        "yla1",
        "yla8",
        "yla16",
        "safe-ld",
        "l1d-mr",
        "replays",
        "win-ld"
    );
    for w in &suite {
        let y1 = run_workload(
            w,
            &config,
            &PolicyKind::Yla {
                regs: 1,
                line_interleaved: false,
            },
            SimOptions::default(),
        );
        let y8 = run_workload(
            w,
            &config,
            &PolicyKind::Yla {
                regs: 8,
                line_interleaved: false,
            },
            SimOptions::default(),
        );
        let y16 = run_workload(
            w,
            &config,
            &PolicyKind::Yla {
                regs: 16,
                line_interleaved: false,
            },
            SimOptions::default(),
        );
        let d = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        let windows = d.stats.policy.checking_windows.max(1);
        println!(
            "{:10} {:>9} {:>6.2}  {:>6.1}% {:>6.1}% {:>6.1}%  {:>6.1}% {:>6.1}% {:>8.1} {:>8.2}",
            w.name,
            y1.stats.committed,
            y1.stats.ipc(),
            y1.stats.policy.store_filter_rate() * 100.0,
            y8.stats.policy.store_filter_rate() * 100.0,
            y16.stats.policy.store_filter_rate() * 100.0,
            d.stats.policy.safe_load_rate() * 100.0,
            y1.stats.l1d.miss_rate() * 100.0,
            d.stats.per_million(d.stats.policy.replays.total()),
            d.stats.policy.window_loads as f64 / windows as f64,
        );
    }
}
