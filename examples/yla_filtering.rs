//! Sweep the YLA register count and interleaving over the benchmark suite
//! and print the Figure 2 data (plus the bloom-filter comparison from
//! Figure 3).
//!
//! ```sh
//! cargo run --release --example yla_filtering
//! # smaller/faster:
//! DMDC_SCALE=smoke cargo run --release --example yla_filtering
//! ```

use dmdc::core::experiments::{fig2, fig3};
use dmdc::workloads::Scale;

fn scale() -> Scale {
    match std::env::var("DMDC_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "smoke" => Scale::Smoke,
        "large" => Scale::Large,
        _ => Scale::Default,
    }
}

fn main() {
    let scale = scale();
    println!("{}", fig2(scale).render());
    println!("{}", fig3(scale).render());
}
