//! Quickstart: assemble a small program, run it through the out-of-order
//! simulator under the conventional design and under DMDC, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dmdc::core::{DmdcConfig, DmdcPolicy};
use dmdc::energy::{EnergyModel, StructureGeometry};
use dmdc::isa::Assembler;
use dmdc::ooo::{BaselinePolicy, CoreConfig, SimOptions, Simulator};

fn main() {
    // A little kernel with genuine memory dependences: a store whose
    // address arrives late (behind a divide), then a load of it.
    let program = Assembler::new()
        .assemble(
            "        li   x1, 0x1000
                     li   x2, 0
                     li   x3, 400
                     li   x8, 7
             loop:   div  x4, x2, x8       # slow address computation
                     andi x4, x4, 63
                     muli x4, x4, 8
                     add  x5, x1, x4       # store address: late
                     sd   x2, 0(x5)
                     lw   x6, 0(x1)        # issues before the store resolves;
                     add  x7, x7, x6       # occasionally to the same address
                     addi x2, x2, 1
                     blt  x2, x3, loop
                     halt",
        )
        .expect("assembles");

    let config = CoreConfig::config2();

    // Conventional CAM-searched load queue.
    let mut base_sim = Simulator::new(&program, config.clone(), Box::new(BaselinePolicy::new()));
    let base = base_sim.run(SimOptions::default()).expect("halts");

    // DMDC: no associative LQ, commit-time checking.
    let policy = Box::new(DmdcPolicy::new(DmdcConfig::global(&config)));
    let mut dmdc_sim = Simulator::new(&program, config.clone(), policy);
    let dmdc = dmdc_sim.run(SimOptions::default()).expect("halts");

    assert_eq!(
        base.checksum, dmdc.checksum,
        "identical architectural results"
    );

    let base_energy = EnergyModel::for_config(&config).evaluate(&base.stats);
    let dmdc_energy =
        EnergyModel::with_geometry(StructureGeometry::dmdc(&config, 8)).evaluate(&dmdc.stats);

    println!("                     baseline       DMDC");
    println!(
        "cycles             {:>10} {:>10}",
        base.stats.cycles, dmdc.stats.cycles
    );
    println!(
        "IPC                {:>10.2} {:>10.2}",
        base.stats.ipc(),
        dmdc.stats.ipc()
    );
    println!(
        "LQ CAM searches    {:>10} {:>10}",
        base.stats.energy.lq_cam_searches, dmdc.stats.energy.lq_cam_searches
    );
    println!(
        "replays            {:>10} {:>10}",
        base.stats.replay_squashes, dmdc.stats.replay_squashes
    );
    println!(
        "LQ-function energy {:>10.0} {:>10.0}",
        base_energy.lq_functionality(),
        dmdc_energy.lq_functionality()
    );
    println!(
        "\nDMDC removes the associative LQ: {:.1}% LQ-functionality energy savings, \
         {:+.2}% execution time.",
        (1.0 - dmdc_energy.lq_functionality() / base_energy.lq_functionality()) * 100.0,
        (dmdc.stats.cycles as f64 / base.stats.cycles as f64 - 1.0) * 100.0,
    );
}
