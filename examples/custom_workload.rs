//! Bring your own workload: write assembly for the mini ISA, attach data
//! segments, sanity-check it on the functional emulator, then measure it
//! under any dependence policy.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use dmdc::core::{CheckingQueuePolicy, DmdcConfig, DmdcPolicy, Interleave, YlaPolicy};
use dmdc::isa::{Assembler, Emulator};
use dmdc::ooo::{BaselinePolicy, CoreConfig, MemDepPolicy, SimOptions, Simulator};
use dmdc::types::Addr;

fn main() {
    // In-place array reversal through a scratch region: stores to one end
    // depend on loads from the other, with an independent checksum stream.
    let src = "
            li   x1, 0x8000       # array base (declared below)
            li   x2, 256          # elements
            li   x3, 0            # i
    build:  slli x4, x3, 3
            add  x4, x4, x1
            mul  x5, x3, x3
            sd   x5, 0(x4)
            addi x3, x3, 1
            blt  x3, x2, build
            # reverse: swap [i] and [n-1-i]
            li   x3, 0
            srli x6, x2, 1        # n/2
    rev:    slli x4, x3, 3
            add  x4, x4, x1
            sub  x5, x2, x3
            addi x5, x5, -1
            slli x5, x5, 3
            add  x5, x5, x1
            ld   x7, 0(x4)
            ld   x8, 0(x5)
            sd   x8, 0(x4)
            sd   x7, 0(x5)
            addi x3, x3, 1
            blt  x3, x6, rev
            # checksum
            li   x3, 0
            li   x28, 0
    cks:    slli x4, x3, 3
            add  x4, x4, x1
            ld   x5, 0(x4)
            add  x28, x28, x5
            addi x3, x3, 1
            blt  x3, x2, cks
            halt";

    let program = Assembler::new()
        .assemble_named("reverse", src)
        .expect("assembles")
        .with_data(Addr(0x8000), vec![0u8; 256 * 8]);

    // 1. Functional reference.
    let mut emu = Emulator::new(&program);
    emu.run(10_000_000).expect("halts");
    println!(
        "emulator: {} instructions, checksum x28 = {}",
        emu.retired(),
        emu.int_reg(28)
    );

    // 2. Timing runs under four different dependence-checking designs.
    let config = CoreConfig::config2();
    let policies: Vec<Box<dyn MemDepPolicy>> = vec![
        Box::new(BaselinePolicy::new()),
        Box::new(YlaPolicy::new(8, Interleave::QuadWord)),
        Box::new(DmdcPolicy::new(DmdcConfig::global(&config))),
        Box::new(CheckingQueuePolicy::new(&config, 16)),
    ];
    println!(
        "\n{:<20} {:>8} {:>6} {:>12} {:>9}",
        "policy", "cycles", "IPC", "LQ searches", "replays"
    );
    for policy in policies {
        let name = policy.name().to_string();
        let mut sim = Simulator::new(&program, config.clone(), policy);
        let r = sim.run(SimOptions::default()).expect("halts");
        assert_eq!(r.checksum, emu.state_checksum(), "{name} diverged");
        println!(
            "{:<20} {:>8} {:>6.2} {:>12} {:>9}",
            name,
            r.stats.cycles,
            r.stats.ipc(),
            r.stats.energy.lq_cam_searches,
            r.stats.replay_squashes
        );
    }
    println!("\nAll designs produced the emulator's exact architectural state.");
}
