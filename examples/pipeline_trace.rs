//! Watch the pipeline work: trace a small program's instruction lifecycles
//! (dispatch / issue / writeback / commit, with rejects, squashes and
//! replays) through the out-of-order core.
//!
//! ```sh
//! cargo run --release --example pipeline_trace
//! ```

use dmdc::core::{DmdcConfig, DmdcPolicy};
use dmdc::isa::Assembler;
use dmdc::ooo::{CoreConfig, SimOptions, Simulator};

fn main() {
    // A premature load: the store's address hides behind a divide, the
    // load issues early, reads stale memory, and DMDC replays it at commit.
    let program = Assembler::new()
        .assemble(
            "        li   x1, 0x1000
                     li   x2, 84
                     li   x3, 2
                     sw   x0, 0(x1)       # pc 3: memory starts at 0
                     div  x4, x2, x3      # pc 4: slow (42)
                     muli x4, x4, 0       # pc 5: = 0
                     add  x5, x1, x4      # pc 6: store address, late
                     sw   x2, 0(x5)       # pc 7: store 84
                     lw   x6, 0(x1)       # pc 8: premature load
                     add  x7, x6, x6      # pc 9: consumer of stale value
                     halt",
        )
        .expect("assembles");

    let config = CoreConfig::config2();
    let policy = Box::new(DmdcPolicy::new(DmdcConfig::global(&config)));
    let mut sim = Simulator::new(&program, config, policy);
    let opts = SimOptions {
        trace_capacity: 4096,
        ..SimOptions::default()
    };
    let result = sim.run(opts).expect("halts");

    println!(
        "pipeline timeline (D=dispatch I=issue R=reject W=writeback C=commit X=squash !=replay):\n"
    );
    print!("{}", sim.trace().render());
    println!(
        "\n{} cycles, {} committed, {} squashed, {} replays — the `!` marks the \
         premature load's commit-time replay; its re-execution commits with the \
         store's value.",
        result.stats.cycles,
        result.stats.committed,
        result.stats.squashed,
        result.stats.replay_squashes
    );
    assert!(result.stats.replay_squashes >= 1, "the demo should replay");
}
