//! Invalidation-traffic behaviour (paper §6.2.4): correctness under
//! injected invalidations for both the conventional coherent design and
//! coherence-enabled DMDC, plus the qualitative trends of Table 6.

use dmdc::core::experiments::{run_workload, PolicyKind};
use dmdc::ooo::{CoreConfig, SimOptions};
use dmdc::workloads::{full_suite, Scale, SyntheticKernel};

fn opts(rate: f64) -> SimOptions {
    SimOptions {
        inval_per_kcycle: rate,
        inval_seed: 11,
        ..SimOptions::default()
    }
}

#[test]
fn both_coherent_designs_survive_heavy_invalidation_traffic() {
    let config = CoreConfig::config2();
    for w in &full_suite(Scale::Smoke) {
        for kind in [PolicyKind::BaselineCoherent, PolicyKind::DmdcCoherent] {
            // Checksum verification inside run_workload is the assertion.
            let r = run_workload(w, &config, &kind, opts(100.0));
            assert!(
                r.stats.policy.invalidations > 0,
                "{} under {kind:?}",
                w.name
            );
        }
    }
}

#[test]
fn invalidations_increase_checking_pressure_monotonically() {
    let config = CoreConfig::config2();
    let w = SyntheticKernel::new(20_000)
        .store_load_gap(3)
        .branch_noise(true)
        .build();
    let mut prev_checking = 0;
    for rate in [0.0, 10.0, 100.0] {
        let r = run_workload(&w, &config, &PolicyKind::DmdcCoherent, opts(rate));
        let checking = r.stats.policy.checking_mode_cycles;
        assert!(
            checking >= prev_checking,
            "checking-mode cycles should grow with invalidation rate ({checking} < {prev_checking} at {rate})"
        );
        prev_checking = checking;
    }
}

#[test]
fn zero_rate_coherent_dmdc_matches_plain_dmdc_closely() {
    // With no invalidations ever injected, the coherent build does the same
    // work (plus the second YLA set, which only *reduces* unsafe stores).
    let config = CoreConfig::config2();
    for w in &full_suite(Scale::Smoke) {
        let plain = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        let coh = run_workload(w, &config, &PolicyKind::DmdcCoherent, opts(0.0));
        assert!(
            coh.stats.policy.safe_stores >= plain.stats.policy.safe_stores,
            "{}: the extra YLA set can only help",
            w.name
        );
        assert_eq!(coh.stats.policy.invalidations, 0);
    }
}

#[test]
fn conventional_coherence_searches_on_every_load() {
    // The POWER4 scheme's cost: with coherence on, loads also search the
    // LQ, so searches far exceed the store-only baseline.
    let config = CoreConfig::config2();
    let w = &full_suite(Scale::Smoke)[0];
    let base = run_workload(w, &config, &PolicyKind::Baseline, SimOptions::default());
    let coh = run_workload(w, &config, &PolicyKind::BaselineCoherent, opts(1.0));
    assert!(
        coh.stats.energy.lq_cam_searches > base.stats.energy.lq_cam_searches + base.stats.loads / 2,
        "coherent baseline must search per load ({} vs {})",
        coh.stats.energy.lq_cam_searches,
        base.stats.energy.lq_cam_searches
    );
}
