//! The core correctness suite: every workload, under every dependence
//! policy, on every machine configuration, must finish with exactly the
//! architectural state the functional emulator computes.
//!
//! This is the strongest property the reproduction offers: premature loads
//! really read stale memory in the timing model, so any policy that misses
//! a violation corrupts state and fails here (or trips the simulator's
//! stale-commit panic, which this suite would surface as a test failure).

use dmdc::core::experiments::{run_workload, PolicyKind};
use dmdc::ooo::{CoreConfig, SimOptions};
use dmdc::workloads::{full_suite, Scale};

fn all_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Baseline,
        PolicyKind::Yla {
            regs: 1,
            line_interleaved: false,
        },
        PolicyKind::Yla {
            regs: 8,
            line_interleaved: false,
        },
        PolicyKind::Yla {
            regs: 8,
            line_interleaved: true,
        },
        PolicyKind::Bloom { entries: 256 },
        PolicyKind::DmdcGlobal,
        PolicyKind::DmdcLocal,
        PolicyKind::DmdcNoSafeLoads,
        PolicyKind::CheckingQueue { entries: 16 },
    ]
}

#[test]
fn every_policy_preserves_architectural_state_on_config2() {
    let config = CoreConfig::config2();
    for w in &full_suite(Scale::Smoke) {
        for kind in &all_policies() {
            // `run_workload` panics on a checksum mismatch.
            let run = run_workload(w, &config, kind, SimOptions::default());
            assert!(
                run.stats.committed > 1_000,
                "{} under {kind:?} barely ran",
                w.name
            );
        }
    }
}

#[test]
fn dmdc_preserves_state_on_all_three_configs() {
    for config in CoreConfig::all() {
        for w in &full_suite(Scale::Smoke) {
            run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        }
    }
}

#[test]
fn tiny_checking_table_still_correct() {
    // A pathologically small table maximizes hash conflicts: false replays
    // soar but correctness must hold.
    let mut config = CoreConfig::config2();
    config.checking_table_entries = 16;
    for w in &full_suite(Scale::Smoke) {
        let run = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        assert!(run.stats.committed > 1_000);
    }
}

#[test]
fn tiny_checking_queue_still_correct() {
    // Constant overflow replays, still architecturally exact.
    for w in &full_suite(Scale::Smoke) {
        run_workload(
            w,
            &CoreConfig::config2(),
            &PolicyKind::CheckingQueue { entries: 1 },
            SimOptions::default(),
        );
    }
}
