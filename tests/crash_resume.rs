//! Crash-safe checkpoint/resume, end to end against the real binary:
//! a suite run killed mid-flight (deterministically, via the injected
//! `kill-after` fault) must resume with `dmdc run --resume <run-id>` and
//! produce stdout byte-identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A fresh working directory under `target/` for one test — the binary
/// writes `target/dmdc-runs/` and `target/dmdc-cache/` relative to its
/// cwd, so each test gets hermetic journals and caches.
fn workdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dmdc(cwd: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmdc"))
        .current_dir(cwd)
        .args(args)
        .output()
        .expect("spawn dmdc")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const SUITE: &[&str] = &[
    "suite",
    "--scale",
    "smoke",
    "--policy",
    "dmdc-global",
    "--jobs",
    "2",
    "--no-cache",
];

#[test]
fn killed_suite_resumes_byte_identical() {
    let wd = workdir("dmdc-crash-resume-wd");

    // The uninterrupted reference run (no journaling involved).
    let clean = dmdc(&wd, SUITE);
    assert!(
        clean.status.success(),
        "clean run failed: {}",
        stderr(&clean)
    );
    let reference = stdout(&clean);
    assert!(reference.contains("== suite"), "unexpected output");

    // The same run, journaled, aborted after 4 checkpoints.
    let mut crash_args = SUITE.to_vec();
    crash_args.extend(["--run-id", "kill-test", "--inject-faults", "kill-after=4"]);
    let crashed = dmdc(&wd, &crash_args);
    assert!(
        !crashed.status.success(),
        "the injected abort must kill the run"
    );
    let journal = wd.join("target/dmdc-runs/kill-test/journal");
    let entries = std::fs::read_dir(&journal).expect("journal exists").count();
    assert!(
        entries >= 4,
        "expected at least the 4 pre-abort checkpoints, found {entries}"
    );

    // Resume: replays the checkpointed cells, simulates only the rest,
    // and must reproduce the reference bytes exactly.
    let resumed = dmdc(&wd, &["run", "--resume", "kill-test"]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        stderr(&resumed)
    );
    assert!(
        stderr(&resumed).contains("resuming run 'kill-test'"),
        "resume must announce itself on stderr"
    );
    assert_eq!(
        stdout(&resumed),
        reference,
        "resumed report must be byte-identical to the uninterrupted run"
    );

    // A second resume replays everything and is still byte-identical.
    let again = dmdc(&wd, &["run", "--resume", "kill-test"]);
    assert!(
        again.status.success(),
        "re-resume failed: {}",
        stderr(&again)
    );
    assert_eq!(stdout(&again), reference);
}

#[test]
fn killed_sampled_run_resumes_byte_identical() {
    let wd = workdir("dmdc-sampled-crash-wd");
    const RUN: &[&str] = &[
        "run",
        "--workload",
        "histo",
        "--policy",
        "dmdc-global",
        "--scale",
        "default",
        "--sampled",
        "--profile",
    ];

    // The uninterrupted reference run (no journaling involved).
    let clean = dmdc(&wd, RUN);
    assert!(
        clean.status.success(),
        "clean sampled run failed: {}",
        stderr(&clean)
    );
    let reference = stdout(&clean);
    assert!(
        reference.contains("sampled") && reference.contains("estimates"),
        "expected a sampled stat block, got: {reference}"
    );

    // The same run, journaled, aborted after 6 of its 24 per-window
    // partial-progress envelopes have been sealed — mid-cell, so resume
    // must continue from the envelope, not restart from scratch.
    let mut crash_args = RUN.to_vec();
    crash_args.extend([
        "--run-id",
        "sampled-kill",
        "--inject-faults",
        "kill-after=6",
    ]);
    let crashed = dmdc(&wd, &crash_args);
    assert!(
        !crashed.status.success(),
        "the injected abort must kill the run"
    );
    let run_dir = wd.join("target/dmdc-runs/sampled-kill");
    let samples = dmdc::core::sampling::sample_envelope_dir(&run_dir);
    let envelopes = std::fs::read_dir(&samples)
        .expect("samples dir exists")
        .count();
    assert!(
        envelopes >= 1,
        "the crashed cell must leave its partial-progress envelope behind"
    );

    // Resume: reload the envelope, run only the remaining windows, and
    // reproduce the reference bytes exactly.
    let resumed = dmdc(&wd, &["run", "--resume", "sampled-kill"]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        stderr(&resumed)
    );
    assert!(
        stderr(&resumed).contains("1 cells resumed"),
        "resume must report the mid-cell continuation, got: {}",
        stderr(&resumed)
    );
    assert_eq!(
        stdout(&resumed),
        reference,
        "resumed sampled run must be byte-identical to the uninterrupted run"
    );
}

#[test]
fn killed_sampled_resume_prefers_shared_checkpoint_store() {
    let wd = workdir("dmdc-sampled-store-crash-wd");
    const RUN: &[&str] = &[
        "run",
        "--workload",
        "histo",
        "--policy",
        "dmdc-global",
        "--scale",
        "default",
        "--sampled",
        "--profile",
    ];

    // A clean run populates the shared checkpoint store under
    // target/dmdc-cache/checkpoints/ — one sealed entry per window.
    let warmup = dmdc(&wd, RUN);
    assert!(
        warmup.status.success(),
        "warmup failed: {}",
        stderr(&warmup)
    );
    let reference = stdout(&warmup);
    assert!(
        stderr(&warmup).contains("24 stored"),
        "warmup must populate the store, got: {}",
        stderr(&warmup)
    );

    // The same run, journaled and killed mid-cell after 6 windows.
    let mut crash_args = RUN.to_vec();
    crash_args.extend(["--run-id", "store-kill", "--inject-faults", "kill-after=6"]);
    let crashed = dmdc(&wd, &crash_args);
    assert!(
        !crashed.status.success(),
        "the injected abort must kill the run"
    );

    // Resume re-dispatches the recorded argv, which re-installs the
    // shared store: windows beyond the partial-progress envelope restore
    // from it, so the resume fast-forwards nothing — and the report is
    // still byte-identical to the uninterrupted run.
    let resumed = dmdc(&wd, &["run", "--resume", "store-kill"]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        stderr(&resumed)
    );
    assert_eq!(
        stdout(&resumed),
        reference,
        "store-warm resume must be byte-identical to the uninterrupted run"
    );
    let err = stderr(&resumed);
    assert!(
        err.contains("0 insts fast-forwarded"),
        "a store-warm resume must not fast-forward, got: {err}"
    );
    let store_line = err
        .lines()
        .find(|l| l.starts_with("[profile] checkpoint store:"))
        .unwrap_or_else(|| panic!("no checkpoint-store profile line in: {err}"));
    assert!(
        store_line.contains("0 misses, 0 stored, 0 corrupt") && !store_line.contains(": 0 hits"),
        "every remaining window must restore from the shared store, got: {store_line}"
    );
}

#[test]
fn completed_journaled_run_matches_unjournaled_run() {
    let wd = workdir("dmdc-journal-noop-wd");
    let clean = dmdc(&wd, SUITE);
    assert!(clean.status.success());

    let mut journaled_args = SUITE.to_vec();
    journaled_args.extend(["--run-id", "full-run"]);
    let journaled = dmdc(&wd, &journaled_args);
    assert!(journaled.status.success(), "{}", stderr(&journaled));
    assert_eq!(
        stdout(&journaled),
        stdout(&clean),
        "journaling must not change a successful run's output"
    );
}

#[test]
fn resume_fails_clearly_on_unknown_or_damaged_runs() {
    let wd = workdir("dmdc-resume-errors-wd");

    let missing = dmdc(&wd, &["run", "--resume", "never-existed"]);
    assert!(!missing.status.success());
    assert!(
        stderr(&missing).contains("nothing to resume"),
        "want a clear message, got: {}",
        stderr(&missing)
    );

    // A journal whose manifest is torn must refuse, not misbehave.
    let run_dir = wd.join("target/dmdc-runs/torn");
    std::fs::create_dir_all(run_dir.join("journal")).unwrap();
    std::fs::write(run_dir.join("manifest"), "to").unwrap();
    let torn = dmdc(&wd, &["run", "--resume", "torn"]);
    assert!(!torn.status.success());
    assert!(
        stderr(&torn).contains("damaged"),
        "want a damage diagnosis, got: {}",
        stderr(&torn)
    );

    // A manifest from a different simulator fingerprint must refuse: its
    // journaled cells cannot be trusted by this binary.
    let other = dmdc(
        &wd,
        &[
            "suite",
            "--scale",
            "smoke",
            "--run-id",
            "foreign",
            "--no-cache",
        ],
    );
    assert!(other.status.success(), "{}", stderr(&other));
    let manifest = wd.join("target/dmdc-runs/foreign/manifest");
    let text = std::fs::read_to_string(&manifest).unwrap();
    // Re-seal the manifest with a doctored fingerprint line.
    let body_start = text.find('\n').unwrap() + 1;
    let doctored = text[body_start..].replacen("fingerprint ", "fingerprint stale-", 1);
    std::fs::write(&manifest, dmdc::core::cache::seal(&doctored)).unwrap();
    let mismatched = dmdc(&wd, &["run", "--resume", "foreign"]);
    assert!(!mismatched.status.success());
    assert!(
        stderr(&mismatched).contains("fingerprint"),
        "want a fingerprint diagnosis, got: {}",
        stderr(&mismatched)
    );
}
