//! Golden snapshots of the service's wire documents: every JSON payload
//! `dmdc serve` puts on the wire — submit replies, status documents,
//! stored results, quota rejections, metrics — must stay byte-identical
//! to the committed snapshots under `tests/golden/service/`.
//!
//! The documents are produced in-process through the same router the
//! daemon serves from, against a deterministically staged job manager,
//! so the snapshots pin the wire contract without any sockets involved.
//! To regenerate after an intentional wire change:
//!
//! ```text
//! DMDC_UPDATE_GOLDEN=1 cargo test --test service_wire
//! ```

use std::path::PathBuf;

use dmdc::core::runner::{set_global_cell_cache, set_global_flight};
use dmdc::core::service::http::Request;
use dmdc::core::service::jobs::{self, JobManager};
use dmdc::core::service::route;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/service")
        .join(name)
}

/// Compares `actual` against the committed snapshot, or rewrites it
/// when `DMDC_UPDATE_GOLDEN` is set.
fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("DMDC_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "wire document `{name}` drifted from {} \
         (regenerate with DMDC_UPDATE_GOLDEN=1 if intentional)",
        path.display()
    );
}

fn post(manager: &JobManager, body: &str) -> (u16, String) {
    route(
        &Request {
            method: "POST".to_string(),
            path: "/jobs".to_string(),
            body: body.to_string(),
        },
        manager,
    )
}

fn get(manager: &JobManager, path: &str) -> (u16, String) {
    route(
        &Request {
            method: "GET".to_string(),
            path: path.to_string(),
            body: String::new(),
        },
        manager,
    )
}

const CELL: &str = r#"{"kind": "cell", "workload": "histo", "policy": "baseline", "scale": "smoke", "client": "alice"}"#;

/// One test drives the whole staged lifecycle: the wire documents build
/// on each other (coalescing needs the created job, the result needs the
/// completion), and a single `#[test]` keeps the process-global cache
/// and flight slots deterministic.
#[test]
fn wire_documents_match_golden_snapshots() {
    // The metrics document includes cache/flight sections only when the
    // process-globals are installed; pin both to absent.
    set_global_cell_cache(None);
    set_global_flight(None);

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("dmdc-service-wire-test");
    let _ = std::fs::remove_dir_all(&dir);
    let manager = JobManager::new(&dir, 2).unwrap();
    manager.set_paused(true);

    // Submit replies: created, coalesced, and the structured 429.
    let (status, created) = post(&manager, CELL);
    assert_eq!(status, 200);
    check("submit-created.json", &created);

    let (status, coalesced) = post(&manager, CELL);
    assert_eq!(status, 200);
    check("submit-coalesced.json", &coalesced);

    let saxpy = CELL.replace("histo", "saxpy");
    assert_eq!(post(&manager, &saxpy).0, 200); // fills alice's quota of 2
    let (status, rejected) = post(&manager, &CELL.replace("histo", "crc"));
    assert_eq!(status, 429);
    check("submit-over-quota.json", &rejected);

    // Status documents: one job, the full listing, the pending result.
    let (status, job_status) = get(&manager, "/jobs/job-1");
    assert_eq!(status, 200);
    check("status-queued.json", &job_status);

    let (status, listing) = get(&manager, "/jobs");
    assert_eq!(status, 200);
    check("jobs-list.json", &listing);

    let (status, pending) = get(&manager, "/jobs/job-1/result");
    assert_eq!(status, 202);
    check("result-pending.json", &pending);

    // The stored result for the real simulation: the same report JSON
    // the CLI's `--format json` emits, fetched through the result route.
    let spec = manager_spec();
    let payload = jobs::execute(&spec).expect("cell simulates clean");
    manager.complete("job-1", Ok(payload));
    let (status, result) = get(&manager, "/jobs/job-1/result");
    assert_eq!(status, 200);
    check("result-cell.json", &result);

    // A failed job stores a structured error document, served as a 500.
    manager.complete(
        "job-2",
        Err("injected failure for the snapshot".to_string()),
    );
    let (status, failed) = get(&manager, "/jobs/job-2/result");
    assert_eq!(status, 500);
    check("result-failed.json", &failed);

    // The metrics document over the staged state above.
    let (status, metrics) = get(&manager, "/metrics");
    assert_eq!(status, 200);
    check("metrics.json", &metrics);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Every hostile body must come back as a structured `{"error": ...}`
/// document with a 4xx status — never a panic, never a hang. This is the
/// fuzz-style sweep over the router; the raw-socket layer below covers
/// what the router never sees.
#[test]
fn hostile_bodies_return_structured_errors() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("dmdc-service-wire-negative");
    let _ = std::fs::remove_dir_all(&dir);
    let manager = JobManager::new(&dir, 2).unwrap();
    manager.set_paused(true);

    let hostile_posts = [
        "",                      // empty body
        "{",                     // truncated JSON
        "not json at all",       // not JSON
        "[1, 2, 3]",             // wrong top-level type
        r#"{"kind": "cell"}"#,   // missing fields
        r#"{"kind": "teapot"}"#, // unknown kind
        r#"{"kind": "cell", "workload": "histo", "policy": "nonsense", "scale": "smoke"}"#,
        r#"{"kind": "cell", "workload": "histo", "policy": "baseline", "scale": "galactic"}"#,
        r#"{"kind": "cell", "workload": "histo", "policy": "baseline", "scale": "smoke", "priority": 300}"#,
        r#"{"kind": "cell", "workload": "histo", "policy": "baseline", "scale": "smoke", "priority": -1}"#,
        r#"{"kind": "cell", "workload": "histo", "policy": "baseline", "scale": "smoke", "priority": 1.5}"#,
        r#"{"kind": "cell", "workload": "histo", "policy": "baseline", "scale": "smoke", "priority": "high"}"#,
        r#"{"kind": "cell", "workload": "histo", "policy": "baseline", "scale": "smoke", "client": ""}"#,
        r#"{"kind": "experiment", "id": "no-such-figure", "scale": "smoke"}"#,
        "{\"kind\": \"cell\", \"workload\": \"\u{0}\"}", // control bytes
    ];
    for body in hostile_posts {
        let (status, reply) = post(&manager, body);
        assert_eq!(status, 400, "body {body:?} must be a 400, got {reply:?}");
        assert!(
            reply.starts_with("{\"error\": "),
            "body {body:?} must produce a structured error, got {reply:?}"
        );
    }

    // Unknown routes and wrong methods: structured 404/405, never a panic.
    let unknown = [
        ("GET", "/"),
        ("GET", "/nope"),
        ("GET", "/jobs/../../etc/passwd"),
        ("GET", "/jobs/job-999"),
        ("GET", "/jobs/job-1/result/extra"),
        ("POST", "/metrics"),
        ("DELETE", "/jobs"),
        ("BREW", "/jobs"),
    ];
    for (method, path) in unknown {
        let (status, reply) = route(
            &Request {
                method: method.to_string(),
                path: path.to_string(),
                body: String::new(),
            },
            &manager,
        );
        assert!(
            matches!(status, 404 | 405),
            "{method} {path} must be 404/405, got {status}: {reply:?}"
        );
        assert!(
            reply.starts_with("{\"error\": "),
            "{method} {path} must produce a structured error, got {reply:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The raw-socket layer: truncated requests, oversized headers/bodies
/// and stalled clients must come back as classified [`ReadError`]s with
/// the right status — 400, 413 and 408 — instead of pinning the accept
/// thread or crashing it.
#[test]
fn raw_socket_abuse_is_classified_not_fatal() {
    use dmdc::core::service::http::{read_request, ReadError, MAX_HEADER_BYTES};
    use std::io::Write;
    use std::net::TcpListener;
    use std::time::Duration;

    // Each case: raw client bytes (then immediate close unless `stall`),
    // and the status the classified error must map to.
    struct Case {
        name: &'static str,
        bytes: Vec<u8>,
        stall: bool,
        status: u16,
    }
    let cases = vec![
        Case {
            name: "truncated body",
            bytes: b"POST /jobs HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"kin".to_vec(),
            stall: false,
            status: 400,
        },
        Case {
            name: "truncated header block",
            bytes: b"POST /jobs HTTP/1.1\r\ncontent-le".to_vec(),
            stall: false,
            status: 400,
        },
        Case {
            name: "empty connection",
            bytes: Vec::new(),
            stall: false,
            status: 400,
        },
        Case {
            name: "oversized declared body",
            bytes: b"POST /jobs HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n".to_vec(),
            stall: false,
            status: 413,
        },
        Case {
            name: "oversized header block",
            bytes: {
                let mut b = b"GET /jobs HTTP/1.1\r\nx-filler: ".to_vec();
                b.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 1024));
                b
            },
            stall: false,
            status: 413,
        },
        Case {
            name: "stalled client",
            bytes: b"POST /jobs HTTP/1.1\r\n".to_vec(),
            stall: true,
            status: 408,
        },
    ];

    for case in cases {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stall = case.stall;
        let bytes = case.bytes.clone();
        let client = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            s.write_all(&bytes).unwrap();
            if stall {
                // Hold the socket open, sending nothing, past the
                // server's read deadline.
                std::thread::sleep(Duration::from_millis(500));
            }
            drop(s);
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let started = std::time::Instant::now();
        let err = match read_request(&mut stream) {
            Err(e) => e,
            Ok(r) => panic!("{}: parsed {:?} from garbage", case.name, r.path),
        };
        assert_eq!(err.status(), case.status, "{}: got {err:?}", case.name);
        assert!(
            !err.message().is_empty(),
            "{}: empty error message",
            case.name
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "{}: read_request hung",
            case.name
        );
        // ReadError statuses stay within the structured set.
        assert!(matches!(
            err,
            ReadError::TooLarge(_) | ReadError::Timeout(_) | ReadError::Malformed(_)
        ));
        let _ = client.join();
    }
}

/// The spec matching [`CELL`], for executing the real simulation.
fn manager_spec() -> jobs::JobSpec {
    use dmdc::core::experiments::PolicyKind;
    use dmdc::workloads::Scale;
    jobs::JobSpec::Cell {
        workload: "histo".to_string(),
        policy: PolicyKind::Baseline,
        config: 2,
        scale: Scale::Smoke,
        inval_rate: 0.0,
        sampled: false,
    }
}
