//! Golden snapshots of the service's wire documents: every JSON payload
//! `dmdc serve` puts on the wire — submit replies, status documents,
//! stored results, quota rejections, metrics — must stay byte-identical
//! to the committed snapshots under `tests/golden/service/`.
//!
//! The documents are produced in-process through the same router the
//! daemon serves from, against a deterministically staged job manager,
//! so the snapshots pin the wire contract without any sockets involved.
//! To regenerate after an intentional wire change:
//!
//! ```text
//! DMDC_UPDATE_GOLDEN=1 cargo test --test service_wire
//! ```

use std::path::PathBuf;

use dmdc::core::runner::{set_global_cell_cache, set_global_flight};
use dmdc::core::service::http::Request;
use dmdc::core::service::jobs::{self, JobManager};
use dmdc::core::service::route;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/service")
        .join(name)
}

/// Compares `actual` against the committed snapshot, or rewrites it
/// when `DMDC_UPDATE_GOLDEN` is set.
fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("DMDC_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "wire document `{name}` drifted from {} \
         (regenerate with DMDC_UPDATE_GOLDEN=1 if intentional)",
        path.display()
    );
}

fn post(manager: &JobManager, body: &str) -> (u16, String) {
    route(
        &Request {
            method: "POST".to_string(),
            path: "/jobs".to_string(),
            body: body.to_string(),
        },
        manager,
    )
}

fn get(manager: &JobManager, path: &str) -> (u16, String) {
    route(
        &Request {
            method: "GET".to_string(),
            path: path.to_string(),
            body: String::new(),
        },
        manager,
    )
}

const CELL: &str = r#"{"kind": "cell", "workload": "histo", "policy": "baseline", "scale": "smoke", "client": "alice"}"#;

/// One test drives the whole staged lifecycle: the wire documents build
/// on each other (coalescing needs the created job, the result needs the
/// completion), and a single `#[test]` keeps the process-global cache
/// and flight slots deterministic.
#[test]
fn wire_documents_match_golden_snapshots() {
    // The metrics document includes cache/flight sections only when the
    // process-globals are installed; pin both to absent.
    set_global_cell_cache(None);
    set_global_flight(None);

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("dmdc-service-wire-test");
    let _ = std::fs::remove_dir_all(&dir);
    let manager = JobManager::new(&dir, 2).unwrap();
    manager.set_paused(true);

    // Submit replies: created, coalesced, and the structured 429.
    let (status, created) = post(&manager, CELL);
    assert_eq!(status, 200);
    check("submit-created.json", &created);

    let (status, coalesced) = post(&manager, CELL);
    assert_eq!(status, 200);
    check("submit-coalesced.json", &coalesced);

    let saxpy = CELL.replace("histo", "saxpy");
    assert_eq!(post(&manager, &saxpy).0, 200); // fills alice's quota of 2
    let (status, rejected) = post(&manager, &CELL.replace("histo", "crc"));
    assert_eq!(status, 429);
    check("submit-over-quota.json", &rejected);

    // Status documents: one job, the full listing, the pending result.
    let (status, job_status) = get(&manager, "/jobs/job-1");
    assert_eq!(status, 200);
    check("status-queued.json", &job_status);

    let (status, listing) = get(&manager, "/jobs");
    assert_eq!(status, 200);
    check("jobs-list.json", &listing);

    let (status, pending) = get(&manager, "/jobs/job-1/result");
    assert_eq!(status, 202);
    check("result-pending.json", &pending);

    // The stored result for the real simulation: the same report JSON
    // the CLI's `--format json` emits, fetched through the result route.
    let spec = manager_spec();
    let payload = jobs::execute(&spec).expect("cell simulates clean");
    manager.complete("job-1", Ok(payload));
    let (status, result) = get(&manager, "/jobs/job-1/result");
    assert_eq!(status, 200);
    check("result-cell.json", &result);

    // A failed job stores a structured error document, served as a 500.
    manager.complete(
        "job-2",
        Err("injected failure for the snapshot".to_string()),
    );
    let (status, failed) = get(&manager, "/jobs/job-2/result");
    assert_eq!(status, 500);
    check("result-failed.json", &failed);

    // The metrics document over the staged state above.
    let (status, metrics) = get(&manager, "/metrics");
    assert_eq!(status, 200);
    check("metrics.json", &metrics);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The spec matching [`CELL`], for executing the real simulation.
fn manager_spec() -> jobs::JobSpec {
    use dmdc::core::experiments::PolicyKind;
    use dmdc::workloads::Scale;
    jobs::JobSpec::Cell {
        workload: "histo".to_string(),
        policy: PolicyKind::Baseline,
        config: 2,
        scale: Scale::Smoke,
        inval_rate: 0.0,
        sampled: false,
    }
}
