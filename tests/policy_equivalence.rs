//! Cross-policy timing invariants.
//!
//! YLA and bloom filtering only decide whether the LQ *search* happens —
//! the search itself is free in the timing model — so as long as they
//! request exactly the same replays as the baseline, their cycle counts
//! must be bit-identical to the baseline's. This pins down that the
//! filters are pure energy optimizations, which is the paper's claim
//! ("the savings are obtained without a performance impact", §6.1).

use dmdc::core::experiments::{run_workload, PolicyKind};
use dmdc::ooo::{CoreConfig, SimOptions};
use dmdc::workloads::{full_suite, Scale};

#[test]
fn yla_filtering_never_changes_timing() {
    let config = CoreConfig::config2();
    for w in &full_suite(Scale::Smoke) {
        let base = run_workload(w, &config, &PolicyKind::Baseline, SimOptions::default());
        for regs in [1, 8] {
            let yla = run_workload(
                w,
                &config,
                &PolicyKind::Yla {
                    regs,
                    line_interleaved: false,
                },
                SimOptions::default(),
            );
            assert_eq!(
                base.stats.cycles, yla.stats.cycles,
                "{}: YLA-{regs} changed the cycle count",
                w.name
            );
            assert_eq!(base.stats.replay_squashes, yla.stats.replay_squashes);
        }
    }
}

#[test]
fn bloom_filtering_never_changes_timing() {
    let config = CoreConfig::config2();
    for w in &full_suite(Scale::Smoke) {
        let base = run_workload(w, &config, &PolicyKind::Baseline, SimOptions::default());
        let bloom = run_workload(
            w,
            &config,
            &PolicyKind::Bloom { entries: 128 },
            SimOptions::default(),
        );
        assert_eq!(base.stats.cycles, bloom.stats.cycles, "{}", w.name);
    }
}

#[test]
fn yla_filter_energy_strictly_below_baseline() {
    // The searches YLA performs are a subset of the baseline's.
    let config = CoreConfig::config2();
    for w in &full_suite(Scale::Smoke) {
        let base = run_workload(w, &config, &PolicyKind::Baseline, SimOptions::default());
        let yla = run_workload(
            w,
            &config,
            &PolicyKind::Yla {
                regs: 8,
                line_interleaved: false,
            },
            SimOptions::default(),
        );
        assert!(
            yla.stats.energy.lq_cam_searches <= base.stats.energy.lq_cam_searches,
            "{}: filtering must not add searches",
            w.name
        );
        // Every search the baseline performs corresponds to a resolved
        // store; YLA classifies the same stores.
        assert_eq!(
            yla.stats.policy.safe_stores + yla.stats.policy.unsafe_stores,
            base.stats.energy.lq_cam_searches,
            "{}: store-resolve counts must agree",
            w.name
        );
    }
}

#[test]
fn dmdc_slowdown_is_bounded() {
    // DMDC may replay (slower) and may exploit the lifted in-flight-load
    // limit (faster); either way the paper's headline is a ~0.3% average
    // impact. Allow a generous 5% per-workload band at smoke scale.
    let config = CoreConfig::config2();
    for w in &full_suite(Scale::Smoke) {
        let base = run_workload(w, &config, &PolicyKind::Baseline, SimOptions::default());
        let dmdc = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        let ratio = dmdc.stats.cycles as f64 / base.stats.cycles as f64;
        assert!(
            (0.7..1.05).contains(&ratio),
            "{}: DMDC cycle ratio {ratio:.3} outside the plausible band",
            w.name
        );
    }
}

#[test]
fn local_dmdc_never_replays_more_than_global() {
    let config = CoreConfig::config2();
    let mut global_total = 0;
    let mut local_total = 0;
    for w in &full_suite(Scale::Smoke) {
        let g = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        let l = run_workload(w, &config, &PolicyKind::DmdcLocal, SimOptions::default());
        global_total += g.stats.policy.replays.false_total();
        local_total += l.stats.policy.replays.false_total();
    }
    assert!(
        local_total <= global_total,
        "local windows must not increase false replays (local {local_total} vs global {global_total})"
    );
}

#[test]
fn safe_load_logic_reduces_false_replays() {
    let config = CoreConfig::config2();
    let mut with_total = 0;
    let mut without_total = 0;
    for w in &full_suite(Scale::Smoke) {
        let with = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        let without = run_workload(
            w,
            &config,
            &PolicyKind::DmdcNoSafeLoads,
            SimOptions::default(),
        );
        with_total += with.stats.policy.replays.false_total();
        without_total += without.stats.policy.replays.false_total();
    }
    assert!(
        with_total <= without_total,
        "safe loads must not hurt ({with_total} with vs {without_total} without)"
    );
}
