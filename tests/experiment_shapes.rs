//! Shape tests for the reproduced results: the qualitative claims of the
//! paper's evaluation must hold on the full suite (at smoke scale, so CI
//! stays fast; the benches regenerate the full-scale numbers).

use dmdc::core::experiments::{
    checking_queue_ablation_on, fig2_on, fig3_on, fig4_on, replay_breakdown_on,
    safe_load_ablation_on, sq_filter_potential_on, table_size_ablation_on, window_stats_on,
};
use dmdc::ooo::CoreConfig;
use dmdc::workloads::{full_suite, Group, Scale, Workload};

fn suite() -> Vec<Workload> {
    full_suite(Scale::Smoke)
}

#[test]
fn fig2_quad_word_beats_line_interleaving_and_grows_with_regs() {
    let fig = fig2_on(&suite(), &CoreConfig::config2());
    for group in [Group::Int, Group::Fp] {
        let series = |interleave: &str| -> Vec<f64> {
            fig.rows
                .iter()
                .filter(|r| r.interleave == interleave && r.group == group)
                .map(|r| r.filtered.mean)
                .collect()
        };
        let qw = series("quad-word");
        let line = series("cache-line");
        // Monotone in register count (allow float fuzz).
        for w in qw.windows(2).chain(line.windows(2)) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "{group}: filtering must not shrink with more regs"
            );
        }
        // Quad-word interleaving dominates for INT (the paper's Figure 2
        // shows a wide gap there); FP's regular strides make the two
        // interleavings nearly equivalent, so allow a small tolerance.
        let slack = if group == Group::Int { 1e-9 } else { 0.03 };
        for (q, l) in qw.iter().zip(&line) {
            assert!(
                *q >= l - slack,
                "{group}: quad-word ({q:.3}) must not trail line interleaving ({l:.3}) by more than {slack}"
            );
        }
        // 8 registers filter the vast majority (paper: 95-98%).
        assert!(
            qw[3] > 0.90,
            "{group}: YLA-8 should exceed 90%, got {}",
            qw[3]
        );
    }
}

#[test]
fn fig3_yla_beats_same_scale_bloom_filters() {
    let fig = fig3_on(&suite(), &CoreConfig::config2());
    let mean = |design: &str, group: Group| {
        fig.rows
            .iter()
            .find(|r| r.design == design && r.group == group)
            .map(|r| r.filtered.mean)
            .expect("row exists")
    };
    for group in [Group::Int, Group::Fp] {
        // An 8-register YLA bank outfilters even a 1024-entry bloom filter
        // (the paper's headline for Figure 3).
        assert!(
            mean("yla-8", group) >= mean("bloom-1024", group) - 1e-9,
            "{group}: yla-8 {} vs bloom-1024 {}",
            mean("yla-8", group),
            mean("bloom-1024", group)
        );
        // Bloom filtering improves with size.
        assert!(mean("bloom-1024", group) >= mean("bloom-32", group) - 1e-9);
    }
}

#[test]
fn fig4_savings_grow_with_machine_size() {
    let fig = fig4_on(&suite(), &CoreConfig::all());
    for group in [Group::Int, Group::Fp] {
        let series: Vec<f64> = fig
            .rows
            .iter()
            .filter(|r| r.group == group)
            .map(|r| r.total_savings.mean)
            .collect();
        assert_eq!(series.len(), 3);
        assert!(
            series[2] > series[0],
            "{group}: config3 savings ({:.3}) should exceed config1 ({:.3})",
            series[2],
            series[0]
        );
        for r in fig.rows.iter().filter(|r| r.group == group) {
            assert!(
                r.lq_savings.mean > 0.80,
                "{group}: LQ savings {:?}",
                r.lq_savings
            );
            assert!(r.slowdown.mean < 0.02, "{group}: slowdown {:?}", r.slowdown);
            assert!(
                r.total_savings.mean > 0.0,
                "{group}: net savings must be positive"
            );
        }
    }
}

#[test]
fn window_tables_have_the_paper_shape() {
    let global = window_stats_on(&suite(), &CoreConfig::config2(), false);
    let local = window_stats_on(&suite(), &CoreConfig::config2(), true);
    for (g, l) in global.rows.iter().zip(&local.rows) {
        assert!(
            g.instructions > g.loads,
            "windows contain non-load instructions"
        );
        assert!(g.safe_loads <= g.loads);
        // Local windows are no longer than global ones (Table 4 vs 2).
        assert!(
            l.instructions <= g.instructions + 1e-9,
            "{:?}: local windows must not outgrow global",
            l.group
        );
    }
}

#[test]
fn replay_tables_favor_local_and_int_dominates_fp() {
    let config = CoreConfig::config2();
    let global = replay_breakdown_on(&suite(), &config, false);
    let local = replay_breakdown_on(&suite(), &config, true);
    let int_g = &global.rows[0];
    let fp_g = &global.rows[1];
    assert!(
        int_g.false_total >= fp_g.false_total,
        "INT should see at least as many false replays as FP (paper: 168 vs 35)"
    );
    for (g, l) in global.rows.iter().zip(&local.rows) {
        assert!(
            l.false_total <= g.false_total + 1e-9,
            "{:?}: local DMDC must not increase false replays",
            g.group
        );
    }
}

#[test]
fn checking_queue_equivalence_point_exists() {
    // Some moderate queue depth should match the table's replay rate to
    // within a small factor (the paper estimates ~16 entries ≈ 2K table).
    let ablation = checking_queue_ablation_on(&suite(), &CoreConfig::config2(), &[4, 16, 32]);
    let table_int = ablation
        .rows
        .iter()
        .find(|(label, g, ..)| label.starts_with("table") && *g == Group::Int)
        .map(|&(_, _, fr, _)| fr)
        .unwrap();
    let q32_int = ablation
        .rows
        .iter()
        .find(|(label, g, ..)| label == "queue-32" && *g == Group::Int)
        .map(|&(_, _, fr, _)| fr)
        .unwrap();
    let q4_int = ablation
        .rows
        .iter()
        .find(|(label, g, ..)| label == "queue-4" && *g == Group::Int)
        .map(|&(_, _, fr, _)| fr)
        .unwrap();
    assert!(
        q32_int <= q4_int + 1e-9,
        "a deeper queue must not replay more (q32 {q32_int} vs q4 {q4_int})"
    );
    // The 32-entry queue should be in the table's ballpark (within ~4x or
    // both negligible).
    assert!(
        q32_int <= table_int * 4.0 + 50.0,
        "queue-32 ({q32_int}) should approach the table ({table_int})"
    );
}

#[test]
fn safe_load_ablation_shows_the_benefit() {
    let ab = safe_load_ablation_on(&suite(), &CoreConfig::config2());
    for (group, with, without) in &ab.rows {
        assert!(
            with <= without,
            "{group}: disabling safe loads must not reduce replays ({with} vs {without})"
        );
    }
}

#[test]
fn sq_filter_potential_is_nontrivial() {
    // Paper §3: "about 20%" of loads are older than every in-flight store.
    let p = sq_filter_potential_on(&suite(), &CoreConfig::config2());
    for (group, potential, saved, slowdown) in &p.rows {
        assert!(
            potential.mean > 0.02 && potential.mean < 0.95,
            "{group}: SQ-filterable fraction {:.3} implausible",
            potential.mean
        );
        assert!(
            (saved.mean - potential.mean).abs() < 0.05,
            "{group}: enabling the filter should save about the measured potential"
        );
        assert!(
            slowdown.mean.abs() < 1e-9,
            "{group}: the SQ filter must be timing-neutral"
        );
    }
}

#[test]
fn growing_the_table_has_diminishing_returns() {
    // Paper §6.2.2: hashing is a minor replay cause at 2K entries, so a
    // bigger table barely helps — while a much smaller one hurts.
    let ab = table_size_ablation_on(&suite(), &CoreConfig::config2(), &[64, 2048, 8192]);
    let int_false = |entries: u32| {
        ab.rows
            .iter()
            .find(|&&(e, g, ..)| e == entries && g == Group::Int)
            .map(|&(_, _, fr, _)| fr)
            .unwrap()
    };
    assert!(
        int_false(64) >= int_false(2048),
        "a 64-entry table must replay at least as much as 2K ({} vs {})",
        int_false(64),
        int_false(2048)
    );
    let improvement = int_false(2048) - int_false(8192);
    assert!(
        improvement <= int_false(2048) * 0.5 + 5.0,
        "quadrupling past 2K should buy little (2K {} vs 8K {})",
        int_false(2048),
        int_false(8192)
    );
}
