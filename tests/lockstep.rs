//! Lockstep equivalence: the event-horizon loop (`event_skipping: true`,
//! the default) must be bit-identical to the plain per-cycle loop on every
//! bundled workload — same checksum, same cycle count, same commit log,
//! same replay breakdown, same everything except the two host-side skip
//! counters that describe *how* the loop ran.
//!
//! This is the hard guarantee that makes the fast path trustworthy: any
//! divergence in stall detection, RNG draw alignment, wakeup ordering, or
//! the deadlock/cycle-limit caps shows up here as a stats mismatch.

use dmdc::core::experiments::PolicyKind;
use dmdc::isa::Emulator;
use dmdc::ooo::{CoreConfig, SimOptions, SimResult, Simulator};
use dmdc::workloads::{full_suite, Scale, Workload};

fn run_mode(w: &Workload, config: &CoreConfig, kind: &PolicyKind, opts: SimOptions) -> SimResult {
    let mut sim = Simulator::new(&w.program, config.clone(), kind.build(config));
    sim.run(opts)
        .unwrap_or_else(|e| panic!("{} under {kind:?}: {e}", w.name))
}

/// Runs `w` both ways and asserts full bit-identity of the results.
fn assert_lockstep(w: &Workload, config: &CoreConfig, kind: &PolicyKind, base: SimOptions) {
    let per_cycle = run_mode(
        w,
        config,
        kind,
        SimOptions {
            event_skipping: false,
            ..base
        },
    );
    let event = run_mode(
        w,
        config,
        kind,
        SimOptions {
            event_skipping: true,
            ..base
        },
    );
    let tag = format!("{} under {kind:?} on {}", w.name, config.name);
    assert_eq!(per_cycle.halted, event.halted, "halted diverged: {tag}");
    assert_eq!(
        per_cycle.checksum, event.checksum,
        "checksum diverged: {tag}"
    );
    assert_eq!(
        per_cycle.stats.cycles, event.stats.cycles,
        "cycle count diverged: {tag}"
    );
    assert_eq!(
        per_cycle.commit_log, event.commit_log,
        "commit log diverged: {tag}"
    );
    assert_eq!(
        per_cycle.stats.policy.replays, event.stats.policy.replays,
        "replay breakdown diverged: {tag}"
    );
    assert_eq!(
        per_cycle.stats.with_skip_counters_zeroed(),
        event.stats.with_skip_counters_zeroed(),
        "stats diverged: {tag}"
    );
    assert_eq!(
        per_cycle.stats.skipped_cycles, 0,
        "per-cycle mode must not skip: {tag}"
    );
}

#[test]
fn full_suite_is_lockstep_identical() {
    let config = CoreConfig::config2();
    let opts = SimOptions {
        collect_commit_log: true,
        ..SimOptions::default()
    };
    for w in &full_suite(Scale::Smoke) {
        for kind in [
            PolicyKind::Baseline,
            PolicyKind::DmdcGlobal,
            PolicyKind::CheckingQueue { entries: 8 },
        ] {
            assert_lockstep(w, &config, &kind, opts);
        }
    }
}

#[test]
fn lockstep_holds_under_invalidation_traffic() {
    // A nonzero invalidation rate exercises the RNG-draw-per-skipped-cycle
    // alignment: the Bernoulli stream must consume exactly one draw per
    // simulated cycle in both modes.
    let config = CoreConfig::config2();
    for rate in [1.0, 10.0, 100.0] {
        let opts = SimOptions {
            collect_commit_log: true,
            inval_per_kcycle: rate,
            inval_seed: 42,
            ..SimOptions::default()
        };
        for w in &full_suite(Scale::Smoke) {
            for kind in [PolicyKind::BaselineCoherent, PolicyKind::DmdcCoherent] {
                assert_lockstep(w, &config, &kind, opts);
            }
        }
    }
}

#[test]
fn lockstep_holds_across_configs_and_max_commits() {
    let w = &full_suite(Scale::Smoke)[6]; // histo: replays, misses, windows
    for config in CoreConfig::all() {
        assert_lockstep(
            w,
            &config,
            &PolicyKind::DmdcGlobal,
            SimOptions {
                collect_commit_log: true,
                ..SimOptions::default()
            },
        );
    }
    // Early stop via max_commits must land on the same commit and cycle.
    assert_lockstep(
        w,
        &CoreConfig::config2(),
        &PolicyKind::Baseline,
        SimOptions {
            collect_commit_log: true,
            max_commits: Some(500),
            ..SimOptions::default()
        },
    );
}

#[test]
fn cycle_limit_fires_identically_in_both_modes() {
    // The fast-forward cap must make CycleLimit trip at the same cycle with
    // the same partial progress as the per-cycle loop.
    let w = &full_suite(Scale::Smoke)[0];
    let config = CoreConfig::config2();
    let run = |skip: bool| {
        let mut sim = Simulator::new(
            &w.program,
            config.clone(),
            PolicyKind::Baseline.build(&config),
        );
        sim.run(SimOptions {
            max_cycles: 300,
            event_skipping: skip,
            ..SimOptions::default()
        })
    };
    let (a, b) = (run(false), run(true));
    let ea = a.expect_err("300 cycles cannot finish the workload");
    let eb = b.expect_err("300 cycles cannot finish the workload");
    assert_eq!(ea.to_string(), eb.to_string());
}

#[test]
fn event_mode_actually_skips_and_matches_the_emulator() {
    // Guards against the trivial way to pass lockstep: never skipping.
    let config = CoreConfig::config2();
    let suite = full_suite(Scale::Smoke);
    let mut total_skipped = 0;
    for w in &suite {
        let r = run_mode(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        assert!(r.halted, "{}", w.name);
        let mut emu = Emulator::new(&w.program);
        emu.run(u64::MAX).expect("workloads halt under emulation");
        assert_eq!(r.checksum, emu.state_checksum(), "{}", w.name);
        total_skipped += r.stats.skipped_cycles;
    }
    assert!(
        total_skipped > 0,
        "event-horizon loop never skipped a cycle across the whole suite"
    );
}
