//! Instruction-by-instruction equivalence: the timing simulator's stream of
//! committed program counters must equal the functional emulator's retired
//! stream — a much stronger statement than final-state checksums, since it
//! pins the *order and identity* of every architecturally executed
//! instruction, across squashes, replays and wrong-path excursions.

use dmdc::core::experiments::PolicyKind;
use dmdc::isa::Emulator;
use dmdc::ooo::{CoreConfig, SimOptions, Simulator};
use dmdc::workloads::{full_suite, Scale, SyntheticKernel, Workload};

fn emulator_pc_stream(w: &Workload) -> Vec<u32> {
    let mut emu = Emulator::new(&w.program);
    let mut pcs = Vec::new();
    while !emu.halted() {
        let r = emu.step().expect("emulates");
        pcs.push(r.pc);
        assert!(pcs.len() < 50_000_000, "runaway");
    }
    pcs
}

fn sim_pc_stream(w: &Workload, kind: &PolicyKind) -> Vec<u32> {
    let config = CoreConfig::config2();
    let mut sim = Simulator::new(&w.program, config.clone(), kind.build(&config));
    let opts = SimOptions {
        collect_commit_log: true,
        ..SimOptions::default()
    };
    let r = sim.run(opts).expect("halts");
    assert!(r.halted);
    r.commit_log
}

#[test]
fn commit_streams_match_the_emulator_for_every_workload() {
    for w in &full_suite(Scale::Smoke) {
        let golden = emulator_pc_stream(w);
        for kind in [PolicyKind::Baseline, PolicyKind::DmdcGlobal] {
            let sim = sim_pc_stream(w, &kind);
            assert_eq!(
                sim.len(),
                golden.len(),
                "{} under {kind:?}: committed {} instructions, emulator retired {}",
                w.name,
                sim.len(),
                golden.len()
            );
            if let Some(i) = (0..golden.len()).find(|&i| sim[i] != golden[i]) {
                panic!(
                    "{} under {kind:?}: commit stream diverges at instruction {i}: \
                     sim pc {} vs emulator pc {}",
                    w.name, sim[i], golden[i]
                );
            }
        }
    }
}

#[test]
fn replay_heavy_kernel_commits_each_instruction_exactly_once() {
    // Tight store-load collisions force replays; the commit stream must
    // still be the architectural stream with no duplicates or holes.
    let w = SyntheticKernel::new(2_000)
        .addr_bits(2)
        .store_load_gap(1)
        .branch_noise(true)
        .build();
    let golden = emulator_pc_stream(&w);
    let sim = sim_pc_stream(&w, &PolicyKind::DmdcGlobal);
    assert_eq!(sim, golden);
}
