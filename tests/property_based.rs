//! Property-based end-to-end tests: random synthetic kernels, random
//! machine geometries — the golden-state invariant and the filters'
//! soundness must hold for all of them.
//!
//! Every property runs with [`SimOptions::audit`] on, so beyond the
//! golden-state check each case is also screened by the invariant auditor
//! (commit order, LSQ shape, safe-store/safe-load soundness, emulator
//! lockstep); `run_workload` panics on any violation. The mutant tests at
//! the bottom prove the auditor actually *can* fail: each plants a known
//! bug through [`dmdc::core::fuzz::Sabotage`] and asserts it is caught
//! and classified.

use dmdc::core::experiments::{run_workload, PolicyKind};
use dmdc::core::fuzz::{fuzz, FuzzOptions, Sabotage};
use dmdc::ooo::{AuditKind, CoreConfig, SimOptions};
use dmdc::workloads::SyntheticKernel;
use proptest::prelude::*;

/// Default options with the invariant auditor enabled.
fn audited() -> SimOptions {
    SimOptions {
        audit: true,
        ..SimOptions::default()
    }
}

fn kernel_strategy() -> impl Strategy<Value = SyntheticKernel> {
    (
        500u32..3_000,
        1u32..10,
        0u32..16,
        any::<bool>(),
        1u32..10_000,
    )
        .prop_map(|(iters, addr_bits, gap, noise, seed)| {
            SyntheticKernel::new(iters)
                .addr_bits(addr_bits.clamp(1, 12))
                .store_load_gap(gap)
                .branch_noise(noise)
                .seed(seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dmdc_golden_state_holds_for_random_kernels(k in kernel_strategy()) {
        let w = k.build();
        // run_workload panics on state divergence.
        run_workload(&w, &CoreConfig::config2(), &PolicyKind::DmdcGlobal, audited());
    }

    #[test]
    fn local_dmdc_and_tiny_tables_hold_for_random_kernels(k in kernel_strategy()) {
        let w = k.build();
        let mut config = CoreConfig::config1();
        config.checking_table_entries = 32; // deliberate hash-conflict storm
        run_workload(&w, &config, &PolicyKind::DmdcLocal, audited());
    }

    #[test]
    fn yla_timing_neutrality_holds_for_random_kernels(k in kernel_strategy()) {
        let w = k.build();
        let config = CoreConfig::config2();
        let base = run_workload(&w, &config, &PolicyKind::Baseline, audited());
        let yla = run_workload(
            &w,
            &config,
            &PolicyKind::Yla { regs: 4, line_interleaved: false },
            SimOptions::default(),
        );
        prop_assert_eq!(base.stats.cycles, yla.stats.cycles);
        prop_assert!(yla.stats.energy.lq_cam_searches <= base.stats.energy.lq_cam_searches);
    }

    #[test]
    fn checking_queue_holds_under_overflow_pressure(k in kernel_strategy()) {
        let w = k.build();
        run_workload(
            &w,
            &CoreConfig::config2(),
            &PolicyKind::CheckingQueue { entries: 2 },
            SimOptions::default(),
        );
    }

    #[test]
    fn coherent_dmdc_holds_under_random_invalidation_rates(
        k in kernel_strategy(),
        rate in 0.0f64..120.0,
        seed in 1u64..1000,
    ) {
        let w = k.build();
        let opts = SimOptions { inval_per_kcycle: rate, inval_seed: seed, ..audited() };
        run_workload(&w, &CoreConfig::config2(), &PolicyKind::DmdcCoherent, opts);
    }
}

/// Known-bad-mutant options: torture only `policy`, with `sabotage`
/// planted, writing repros to a throwaway directory.
fn mutant_opts(seed: u64, policy: PolicyKind, sabotage: Sabotage) -> FuzzOptions {
    FuzzOptions {
        budget: 60,
        policies: vec![policy],
        sabotage: Some(sabotage),
        out_dir: std::env::temp_dir().join(format!("dmdc-mutant-{seed}")),
        ..FuzzOptions::new(seed)
    }
}

/// Mutant: DMDC's commit-time `Replay` verdicts are suppressed — the
/// checking table effectively drops its entries. The auditor must report
/// a missed replay (invariant 6) instead of letting stale loads commit.
#[test]
fn auditor_catches_dmdc_dropping_replays() {
    let opts = mutant_opts(
        101,
        PolicyKind::DmdcGlobal,
        Sabotage::SuppressReplays { from: 0 },
    );
    let outcome = fuzz(&opts).unwrap();
    let repro = outcome.failure.expect("mutant must be caught");
    assert_eq!(repro.kind, AuditKind::MissedReplay.label());
    let _ = std::fs::remove_dir_all(&opts.out_dir);
}

/// Mutant: the associative checking queue drops its replays too — same
/// class of bug, different enforcement structure.
#[test]
fn auditor_catches_checking_queue_dropping_replays() {
    let opts = mutant_opts(
        102,
        PolicyKind::CheckingQueue { entries: 16 },
        Sabotage::SuppressReplays { from: 0 },
    );
    let outcome = fuzz(&opts).unwrap();
    let repro = outcome.failure.expect("mutant must be caught");
    assert_eq!(repro.kind, AuditKind::MissedReplay.label());
    let _ = std::fs::remove_dir_all(&opts.out_dir);
}

/// Mutant: every resolving store is declared *safe* (and any replay it
/// demanded is discarded), so DMDC never inserts into its checking
/// table. Depending on timing the auditor flags the unsound
/// classification itself (invariant 3) or the stale load it lets through
/// (invariant 6) — either way it must fire.
#[test]
fn auditor_catches_forced_safe_stores() {
    let opts = mutant_opts(103, PolicyKind::DmdcGlobal, Sabotage::ForceSafeStores);
    let outcome = fuzz(&opts).unwrap();
    let repro = outcome.failure.expect("mutant must be caught");
    assert!(
        repro.kind == AuditKind::SafeStoreYoungerLoad.label()
            || repro.kind == AuditKind::MissedReplay.label(),
        "unexpected failure class `{}`",
        repro.kind
    );
    let _ = std::fs::remove_dir_all(&opts.out_dir);
}
