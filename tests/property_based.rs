//! Property-based end-to-end tests: random synthetic kernels, random
//! machine geometries — the golden-state invariant and the filters'
//! soundness must hold for all of them.

use dmdc::core::experiments::{run_workload, PolicyKind};
use dmdc::ooo::{CoreConfig, SimOptions};
use dmdc::workloads::SyntheticKernel;
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = SyntheticKernel> {
    (
        500u32..3_000,
        1u32..10,
        0u32..16,
        any::<bool>(),
        1u32..10_000,
    )
        .prop_map(|(iters, addr_bits, gap, noise, seed)| {
            SyntheticKernel::new(iters)
                .addr_bits(addr_bits.clamp(1, 12))
                .store_load_gap(gap)
                .branch_noise(noise)
                .seed(seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dmdc_golden_state_holds_for_random_kernels(k in kernel_strategy()) {
        let w = k.build();
        // run_workload panics on state divergence.
        run_workload(&w, &CoreConfig::config2(), &PolicyKind::DmdcGlobal, SimOptions::default());
    }

    #[test]
    fn local_dmdc_and_tiny_tables_hold_for_random_kernels(k in kernel_strategy()) {
        let w = k.build();
        let mut config = CoreConfig::config1();
        config.checking_table_entries = 32; // deliberate hash-conflict storm
        run_workload(&w, &config, &PolicyKind::DmdcLocal, SimOptions::default());
    }

    #[test]
    fn yla_timing_neutrality_holds_for_random_kernels(k in kernel_strategy()) {
        let w = k.build();
        let config = CoreConfig::config2();
        let base = run_workload(&w, &config, &PolicyKind::Baseline, SimOptions::default());
        let yla = run_workload(
            &w,
            &config,
            &PolicyKind::Yla { regs: 4, line_interleaved: false },
            SimOptions::default(),
        );
        prop_assert_eq!(base.stats.cycles, yla.stats.cycles);
        prop_assert!(yla.stats.energy.lq_cam_searches <= base.stats.energy.lq_cam_searches);
    }

    #[test]
    fn checking_queue_holds_under_overflow_pressure(k in kernel_strategy()) {
        let w = k.build();
        run_workload(
            &w,
            &CoreConfig::config2(),
            &PolicyKind::CheckingQueue { entries: 2 },
            SimOptions::default(),
        );
    }

    #[test]
    fn coherent_dmdc_holds_under_random_invalidation_rates(
        k in kernel_strategy(),
        rate in 0.0f64..120.0,
        seed in 1u64..1000,
    ) {
        let w = k.build();
        let opts = SimOptions { inval_per_kcycle: rate, inval_seed: seed, ..SimOptions::default() };
        run_workload(&w, &CoreConfig::config2(), &PolicyKind::DmdcCoherent, opts);
    }
}
