//! Cache-correctness tests for the persistent cell cache: warm lookups
//! must return exactly what the cold run computed, editing one workload
//! must invalidate exactly that workload's cells, and bumping the
//! simulator fingerprint must invalidate everything.
//!
//! Each test uses its own directory under the workspace `target/` so
//! runs are hermetic and `cargo clean` clears them.

use std::path::PathBuf;
use std::sync::Arc;

use dmdc::core::cache::CellCache;
use dmdc::core::experiments::PolicyKind;
use dmdc::core::runner::{Engine, RunSpec};
use dmdc::ooo::CoreConfig;
use dmdc::workloads::{int_suite, Scale, SyntheticKernel, Workload};

/// A fresh, empty cache directory under `target/`.
fn cache_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Two workloads: a synthetic kernel (whose program bytes the tests can
/// vary without renaming it) and one suite kernel.
fn suite(seed: u32) -> Vec<Workload> {
    vec![
        SyntheticKernel::new(300).seed(seed).build(),
        int_suite(Scale::Smoke).remove(0),
    ]
}

fn specs() -> Vec<RunSpec> {
    (0..2)
        .map(|w| RunSpec::new(w, &CoreConfig::config2(), PolicyKind::DmdcGlobal))
        .collect()
}

fn run(workloads: &[Workload], cache: &Arc<CellCache>) -> Vec<dmdc::core::CellResult> {
    let engine = Engine::new(workloads).with_cache(Some(Arc::clone(cache)));
    specs().iter().map(|s| engine.run_cell(s)).collect()
}

#[test]
fn warm_cells_are_verbatim_and_counted() {
    let dir = cache_dir("dmdc-cache-test-warm");
    let cold_cache = Arc::new(CellCache::new(&dir));
    let workloads = suite(271_828);
    let cold = run(&workloads, &cold_cache);
    let c = cold_cache.counters();
    assert_eq!((c.hits, c.misses, c.stores), (0, 2, 2));

    let warm_cache = Arc::new(CellCache::new(&dir));
    let warm = run(&workloads, &warm_cache);
    let c = warm_cache.counters();
    assert_eq!((c.hits, c.misses, c.stores), (2, 0, 0));
    assert_eq!(cold, warm, "cached cells must round-trip verbatim");
}

#[test]
fn editing_one_workload_invalidates_only_its_cells() {
    let dir = cache_dir("dmdc-cache-test-edit");
    run(&suite(271_828), &Arc::new(CellCache::new(&dir)));

    // Same workload names, but the synthetic kernel's program now differs
    // (different LCG seed constant): its cell must re-run, the untouched
    // suite kernel's cell must still hit.
    let edited_cache = Arc::new(CellCache::new(&dir));
    run(&suite(314_159), &edited_cache);
    let c = edited_cache.counters();
    assert_eq!((c.hits, c.misses, c.stores), (1, 1, 1));
}

#[test]
fn bumping_the_fingerprint_invalidates_everything() {
    let dir = cache_dir("dmdc-cache-test-fp");
    let workloads = suite(271_828);
    run(&workloads, &Arc::new(CellCache::new(&dir)));

    let bumped = Arc::new(CellCache::with_fingerprint(&dir, "dmdc-test-vNext"));
    run(&workloads, &bumped);
    let c = bumped.counters();
    assert_eq!((c.hits, c.misses, c.stores), (0, 2, 2));
}

#[test]
fn corrupt_records_degrade_to_misses() {
    let dir = cache_dir("dmdc-cache-test-corrupt");
    let workloads = suite(271_828);
    let cold = run(&workloads, &Arc::new(CellCache::new(&dir)));

    for entry in std::fs::read_dir(&dir).unwrap() {
        std::fs::write(entry.unwrap().path(), "not a cell record").unwrap();
    }
    let cache = Arc::new(CellCache::new(&dir));
    let reran = run(&workloads, &cache);
    let c = cache.counters();
    assert_eq!((c.hits, c.misses, c.stores), (0, 2, 2));
    assert_eq!(cold, reran, "re-simulated cells must match the originals");
}
