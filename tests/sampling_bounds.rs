//! Statistical regression bounds for the sampling engine: regenerating
//! fig2 and table6 in sampled mode must (a) attach a 95% confidence
//! half-width to every estimate and (b) keep the exact value inside it.
//!
//! Everything here is deterministic — the sampled layout, the warming
//! rules and the window simulations are pure functions of the inputs —
//! so these bounds either always hold or never do; a failure means a
//! change to the sampling engine (or the workloads) moved an estimate
//! outside its own error bar.
//!
//! The whole comparison lives in ONE test function: sampled mode is the
//! process-wide default the CLI installs (`runner::set_default_sampling`),
//! and parallel test threads must not race on it.

use dmdc::core::experiments::{fig2_on, table6_on, Fig2, Table6};
use dmdc::core::runner::set_default_sampling;
use dmdc::ooo::{CoreConfig, SampleSpec};
use dmdc::workloads::{full_suite, Scale};

/// Rounding slack on top of each reported half-width: the CIs ride the
/// all-u64 stats export as Q32.32 fixed point.
const EPS: f64 = 1e-6;

const RATES: [f64; 4] = [0.0, 1.0, 10.0, 100.0];

fn fig2_pair(scale: Scale) -> (Fig2, Fig2) {
    let config = CoreConfig::config2();
    set_default_sampling(SampleSpec::EXACT);
    let exact = fig2_on(&full_suite(scale), &config);
    set_default_sampling(SampleSpec::standard());
    let sampled = fig2_on(&full_suite(scale), &config);
    set_default_sampling(SampleSpec::EXACT);
    (exact, sampled)
}

fn table6_pair(scale: Scale) -> (Table6, Table6) {
    let config = CoreConfig::config2();
    set_default_sampling(SampleSpec::EXACT);
    let exact = table6_on(&full_suite(scale), &config, &RATES);
    set_default_sampling(SampleSpec::standard());
    let sampled = table6_on(&full_suite(scale), &config, &RATES);
    set_default_sampling(SampleSpec::EXACT);
    (exact, sampled)
}

fn check_fig2(scale: Scale) {
    let (exact, sampled) = fig2_pair(scale);
    assert_eq!(exact.rows.len(), sampled.rows.len());
    for (e, s) in exact.rows.iter().zip(&sampled.rows) {
        assert_eq!(
            (e.interleave, e.regs, e.group),
            (s.interleave, s.regs, s.group)
        );
        let ci = s.filtered.ci.unwrap_or_else(|| {
            panic!(
                "{scale:?} fig2 {}/{}x {}: sampled estimate must carry a CI",
                e.interleave, e.regs, e.group
            )
        });
        let err = (s.filtered.mean - e.filtered.mean).abs();
        assert!(
            err <= ci + EPS,
            "{scale:?} fig2 {}/{}x {}: sampled {:.4} vs exact {:.4}, |err| {err:.4} > ci {ci:.4}",
            e.interleave,
            e.regs,
            e.group,
            s.filtered.mean,
            e.filtered.mean,
        );
    }
}

fn check_table6(scale: Scale) {
    let (exact, sampled) = table6_pair(scale);
    assert_eq!(exact.rows.len(), sampled.rows.len());
    for (e, s) in exact.rows.iter().zip(&sampled.rows) {
        assert_eq!((e.group, e.rate), (s.group, s.rate));
        let ci = s.slowdown_ci.unwrap_or_else(|| {
            panic!(
                "{scale:?} table6 {} @{}: sampled slowdown must carry a CI",
                e.group, e.rate
            )
        });
        let err = (s.slowdown - e.slowdown).abs();
        assert!(
            err <= ci + EPS,
            "{scale:?} table6 {} @{}: sampled slowdown {:.4} vs exact {:.4}, |err| {err:.4} > ci {ci:.4}",
            e.group,
            e.rate,
            s.slowdown,
            e.slowdown,
        );
    }
}

#[test]
fn sampled_estimates_bracket_exact_at_smoke_and_default() {
    for scale in [Scale::Smoke, Scale::Default] {
        check_fig2(scale);
        check_table6(scale);
    }
}
