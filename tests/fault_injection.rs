//! Fault-injection regression tests: every recovery path — cell-panic
//! retry, quarantine after exhausted retries, hang/watchdog timeout,
//! worker-thread death, cache corruption — is exercised deterministically
//! through the CLI's `--inject-faults` plan, and each must end with the
//! exact bytes a fault-free run produces (or, for quarantine, with the
//! structured failure table and a nonzero exit).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dmdc(cwd: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmdc"))
        .current_dir(cwd)
        .args(args)
        .output()
        .expect("spawn dmdc")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const SUITE: &[&str] = &[
    "suite",
    "--scale",
    "smoke",
    "--policy",
    "dmdc-global",
    "--jobs",
    "2",
    "--no-cache",
];

fn suite_with<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = SUITE.to_vec();
    args.extend(extra);
    args
}

/// Parses `"<n> <label>"` out of the `--profile` recovery line, e.g. the
/// `3` from `... recovery: 3 retries, 0 cell failures, ...`.
fn recovery_field(err: &str, label: &str) -> u64 {
    let line = err
        .lines()
        .find(|l| l.contains("[profile] recovery:"))
        .unwrap_or_else(|| panic!("no recovery line in stderr:\n{err}"));
    let idx = line
        .find(label)
        .unwrap_or_else(|| panic!("no `{label}` field in `{line}`"));
    line[..idx]
        .trim_end()
        .rsplit(' ')
        .next()
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("unparsable `{label}` in `{line}`"))
}

#[test]
fn injected_panics_are_retried_to_an_identical_report() {
    let wd = workdir("dmdc-fault-panic-wd");
    let clean = dmdc(&wd, SUITE);
    assert!(clean.status.success(), "{}", stderr(&clean));

    // panic=1 selects every workload; the panic fires on attempt 0 only,
    // so the default single retry recovers each cell.
    let faulted = dmdc(
        &wd,
        &suite_with(&["--inject-faults", "seed=1,panic=1", "--profile"]),
    );
    assert!(
        faulted.status.success(),
        "injected panics must be survived: {}",
        stderr(&faulted)
    );
    assert_eq!(
        stdout(&faulted),
        stdout(&clean),
        "recovered run must emit identical bytes"
    );
    let err = stderr(&faulted);
    assert!(
        recovery_field(&err, "retries") > 0,
        "retries recorded:\n{err}"
    );
    assert_eq!(recovery_field(&err, "cell failures"), 0, "{err}");
}

#[test]
fn exhausted_retries_quarantine_with_a_structured_report() {
    let wd = workdir("dmdc-fault-quarantine-wd");
    // panic-attempts=99 outlasts any sane retry budget: every attempt of
    // every cell panics, so every cell quarantines.
    let out = dmdc(
        &wd,
        &suite_with(&[
            "--inject-faults",
            "seed=1,panic=1,panic-attempts=99",
            "--retries",
            "1",
        ]),
    );
    assert!(!out.status.success(), "a partial report must exit nonzero");
    let text = stdout(&out);
    assert!(
        text.contains("== quarantined cells =="),
        "failure table missing:\n{text}"
    );
    assert!(text.contains("panic"), "failure kind missing:\n{text}");
    assert!(
        text.contains("injected fault: cell panic"),
        "failure detail missing:\n{text}"
    );
    assert!(
        stderr(&out).contains("quarantined"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn hung_cells_hit_the_watchdog_and_recover() {
    let wd = workdir("dmdc-fault-hang-wd");
    let clean = dmdc(&wd, SUITE);
    assert!(clean.status.success(), "{}", stderr(&clean));

    // Every cell's first attempt sleeps well past the watchdog; the
    // retry (no hang on attempt 1) completes normally. The watchdog is
    // generous because the retry attempt — a real debug-build simulation
    // under parallel load — must finish inside it.
    let faulted = dmdc(
        &wd,
        &suite_with(&[
            "--inject-faults",
            "seed=1,hang=1,hang-ms=20000",
            "--cell-timeout",
            "3000",
            "--profile",
        ]),
    );
    assert!(
        faulted.status.success(),
        "hangs must be survived: {}",
        stderr(&faulted)
    );
    assert_eq!(stdout(&faulted), stdout(&clean));
    let err = stderr(&faulted);
    assert!(recovery_field(&err, "retries") > 0, "{err}");
    assert_eq!(recovery_field(&err, "cell failures"), 0, "{err}");
}

#[test]
fn a_dead_worker_degrades_to_serial_not_to_failure() {
    let wd = workdir("dmdc-fault-worker-wd");
    let clean = dmdc(&wd, SUITE);
    assert!(clean.status.success(), "{}", stderr(&clean));

    let faulted = dmdc(
        &wd,
        &suite_with(&[
            "--jobs",
            "4",
            "--inject-faults",
            "worker-panic=1",
            "--profile",
        ]),
    );
    assert!(
        faulted.status.success(),
        "a dead worker must not fail the run: {}",
        stderr(&faulted)
    );
    assert_eq!(stdout(&faulted), stdout(&clean));
    let err = stderr(&faulted);
    assert_eq!(recovery_field(&err, "workers lost"), 1, "{err}");
    assert_eq!(recovery_field(&err, "cell failures"), 0, "{err}");
}

#[test]
fn corrupted_cache_entries_are_quarantined_and_regenerated() {
    let wd = workdir("dmdc-fault-cache-wd");
    // First run: the cache fills, then every freshly written entry gets a
    // byte flipped (corruption lands after the in-memory result is used,
    // so this run's output is already correct).
    let seeding = dmdc(
        &wd,
        &[
            "suite",
            "--scale",
            "smoke",
            "--policy",
            "dmdc-global",
            "--jobs",
            "2",
            "--inject-faults",
            "corrupt=1",
        ],
    );
    assert!(seeding.status.success(), "{}", stderr(&seeding));

    // Second run, no faults: every lookup must detect the damage,
    // quarantine the entry, re-simulate, and emit identical bytes.
    let recovered = dmdc(
        &wd,
        &[
            "suite",
            "--scale",
            "smoke",
            "--policy",
            "dmdc-global",
            "--jobs",
            "2",
            "--profile",
        ],
    );
    assert!(recovered.status.success(), "{}", stderr(&recovered));
    assert_eq!(stdout(&recovered), stdout(&seeding));
    let err = stderr(&recovered);
    assert!(recovery_field(&err, "cache quarantined") > 0, "{err}");
    assert!(
        err.contains("corrupt"),
        "profile cache line must carry integrity counters: {err}"
    );
    let quarantine = wd.join("target/dmdc-cache/quarantine");
    assert!(
        std::fs::read_dir(&quarantine)
            .map(|d| d.count())
            .unwrap_or(0)
            > 0,
        "damaged entries preserved for inspection"
    );

    // Third run: the regenerated entries are trusted again (pure hits,
    // nothing quarantined).
    let warm = dmdc(
        &wd,
        &[
            "suite",
            "--scale",
            "smoke",
            "--policy",
            "dmdc-global",
            "--jobs",
            "2",
            "--profile",
        ],
    );
    assert!(warm.status.success(), "{}", stderr(&warm));
    assert_eq!(stdout(&warm), stdout(&seeding));
    assert_eq!(recovery_field(&stderr(&warm), "cache quarantined"), 0);
}

#[test]
fn truncated_journal_entries_are_dropped_on_resume() {
    let wd = workdir("dmdc-fault-truncate-wd");
    let clean = dmdc(&wd, SUITE);
    assert!(clean.status.success(), "{}", stderr(&clean));

    // Journal every cell, tearing every second checkpoint, then abort.
    let crashed = dmdc(
        &wd,
        &suite_with(&[
            "--run-id",
            "torn-entries",
            "--inject-faults",
            "truncate=2,kill-after=6",
        ]),
    );
    assert!(!crashed.status.success());

    // Resume: torn entries are dropped (and re-simulated), intact ones
    // replay; the report is still byte-identical.
    let resumed = dmdc(&wd, &["run", "--resume", "torn-entries", "--profile"]);
    assert!(resumed.status.success(), "{}", stderr(&resumed));
    assert_eq!(stdout(&resumed), stdout(&clean));
}

#[test]
fn fuzz_replay_fails_gracefully_on_bad_repro_files() {
    let wd = workdir("dmdc-fault-replay-wd");

    // Missing file: clean error, nonzero exit.
    let missing = dmdc(&wd, &["fuzz", "--replay", "no/such/file.repro"]);
    assert!(!missing.status.success());
    assert!(
        stderr(&missing).contains("cannot read"),
        "stderr: {}",
        stderr(&missing)
    );

    // Syntactically corrupt file: clean parse error, nonzero exit.
    let garbage = wd.join("garbage.repro");
    std::fs::write(&garbage, "seed 1\nwarble warble\n").unwrap();
    let corrupt = dmdc(&wd, &["fuzz", "--replay", garbage.to_str().unwrap()]);
    assert!(!corrupt.status.success());
    assert!(
        stderr(&corrupt).contains("error:"),
        "stderr: {}",
        stderr(&corrupt)
    );

    // Parseable but degenerate kernel: whatever happens inside the
    // simulator is caught and reported — the process itself never dies.
    let degenerate = wd.join("degenerate.repro");
    std::fs::write(
        &degenerate,
        "policy dmdc-global\nconfig 2\nfailure panic\niters 0\nop alu\n",
    )
    .unwrap();
    let replayed = dmdc(&wd, &["fuzz", "--replay", degenerate.to_str().unwrap()]);
    // Clean replay (exit 0) or a reported reproduction (exit 1 with the
    // structured message) are both acceptable; an abort is not.
    assert!(
        replayed.status.code().is_some(),
        "replay must exit, not die on a signal"
    );
    assert!(
        stdout(&replayed).contains("replaying"),
        "stdout: {}",
        stdout(&replayed)
    );
}

/// The distributed chaos keys (PR 10) must parse in any `--inject-faults`
/// plan but stay completely inert outside a worker/coordinator: a plain
/// single-process suite armed with all four still succeeds with clean-run
/// bytes. (Their firing paths are covered by tests/distrib.rs.)
#[test]
fn distributed_chaos_keys_are_inert_outside_distrib() {
    let wd = workdir("dmdc-fault-distrib-keys-wd");
    let clean = dmdc(&wd, SUITE);
    assert!(clean.status.success(), "{}", stderr(&clean));

    let armed = dmdc(
        &wd,
        &suite_with(&[
            "--inject-faults",
            "seed=1,worker-kill-after=1,drop-heartbeats=1,stale-claim=100,partial-upload=2",
        ]),
    );
    assert!(
        armed.status.success(),
        "distributed keys must be inert in a single-process run: {}",
        stderr(&armed)
    );
    assert_eq!(
        stdout(&armed),
        stdout(&clean),
        "inert chaos keys must not perturb the report"
    );

    // An unknown key is still rejected up front, not silently ignored.
    let bogus = dmdc(&wd, &suite_with(&["--inject-faults", "seed=1,warble=3"]));
    assert!(!bogus.status.success());
    assert!(
        stderr(&bogus).contains("warble"),
        "rejection must name the bad key: {}",
        stderr(&bogus)
    );
}
