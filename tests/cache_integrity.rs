//! Cache-integrity matrix: every class of on-disk damage — truncation,
//! a bit-flipped body, a lying checksum, a foreign or version-mismatched
//! header, a stale (checksum-valid but undeserializable) record — must be
//! detected before deserialization, quarantined to `quarantine/` under
//! the cache root, counted, and transparently regenerated. A damaged
//! entry is never silently deserialized and never consulted twice.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::Arc;

use dmdc::core::cache::{seal, CellCache};
use dmdc::core::experiments::PolicyKind;
use dmdc::core::runner::{Engine, RunSpec};
use dmdc::ooo::CoreConfig;
use dmdc::workloads::{SyntheticKernel, Workload};

/// A fresh, empty cache directory under `target/`.
fn cache_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workloads() -> Vec<Workload> {
    vec![SyntheticKernel::new(300).seed(99).build()]
}

fn spec() -> RunSpec {
    RunSpec::new(0, &CoreConfig::config2(), PolicyKind::DmdcGlobal)
}

fn run(workloads: &[Workload], cache: &Arc<CellCache>) -> dmdc::core::CellResult {
    Engine::with_jobs(workloads, 1)
        .with_cache(Some(Arc::clone(cache)))
        .run_cell(&spec())
}

/// The single `.cell` file a one-cell run leaves behind.
fn the_entry(dir: &Path) -> PathBuf {
    let mut cells: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cell"))
        .collect();
    assert_eq!(cells.len(), 1, "expected exactly one cache entry");
    cells.pop().unwrap()
}

/// Damages the entry with `damage`, then proves the next run (a) does not
/// trust it, (b) moves it to `quarantine/`, (c) regenerates a cell equal
/// to the original, and (d) leaves a fresh, loadable entry behind.
fn damaged_entry_is_quarantined_and_regenerated(test: &str, damage: impl FnOnce(&Path) -> Vec<u8>) {
    let dir = cache_dir(&format!("dmdc-cache-integrity-{test}"));
    let ws = workloads();
    let original = run(&ws, &Arc::new(CellCache::new(&dir)));
    let entry = the_entry(&dir);
    let bytes = damage(&entry);
    std::fs::write(&entry, bytes).unwrap();

    let cache = Arc::new(CellCache::new(&dir));
    let regenerated = run(&ws, &cache);
    assert_eq!(regenerated, original, "{test}: regenerated cell must match");
    let c = cache.counters();
    assert_eq!(
        (c.hits, c.misses, c.stores, c.corrupt, c.quarantined),
        (0, 1, 1, 1, 1),
        "{test}: counters"
    );
    let quarantined: Vec<_> = std::fs::read_dir(cache.quarantine_dir())
        .unwrap_or_else(|e| panic!("{test}: no quarantine dir: {e}"))
        .flatten()
        .collect();
    assert_eq!(quarantined.len(), 1, "{test}: damaged file preserved");

    // The regenerated entry is trusted again: a third run is a pure hit.
    let warm = Arc::new(CellCache::new(&dir));
    assert_eq!(run(&ws, &warm), original);
    let c = warm.counters();
    assert_eq!((c.hits, c.corrupt), (1, 0), "{test}: warm after repair");
}

#[test]
fn truncated_entry() {
    damaged_entry_is_quarantined_and_regenerated("truncated", |p| {
        let bytes = std::fs::read(p).unwrap();
        bytes[..bytes.len() / 2].to_vec()
    });
}

#[test]
fn bit_flipped_body() {
    damaged_entry_is_quarantined_and_regenerated("bitflip", |p| {
        let mut bytes = std::fs::read(p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        bytes
    });
}

#[test]
fn checksum_mismatch_in_header() {
    damaged_entry_is_quarantined_and_regenerated("checksum", |p| {
        let text = std::fs::read_to_string(p).unwrap();
        let (header, body) = text.split_once('\n').unwrap();
        // Rewrite the header's checksum field to a lie; body untouched.
        let mut words: Vec<String> = header.split(' ').map(str::to_string).collect();
        let last = words.last_mut().unwrap();
        *last = format!("{:016x}", u64::from_str_radix(last, 16).unwrap() ^ 1);
        format!("{}\n{body}", words.join(" ")).into_bytes()
    });
}

#[test]
fn version_header_mismatch() {
    damaged_entry_is_quarantined_and_regenerated("version", |p| {
        std::fs::read_to_string(p)
            .unwrap()
            .replacen("dmdc-seal v1", "dmdc-seal v9", 1)
            .into_bytes()
    });
}

#[test]
fn foreign_file() {
    damaged_entry_is_quarantined_and_regenerated("foreign", |_| {
        b"this was never a sealed cell record".to_vec()
    });
}

#[test]
fn stale_record_with_valid_seal() {
    // A perfectly sealed envelope around a record the current schema
    // cannot parse: integrity passes, deserialization must still refuse.
    damaged_entry_is_quarantined_and_regenerated("stale", |_| {
        seal("dmdc-cell v0 3\nworkload synthetic\n1 2 3\n").into_bytes()
    });
}

// ---------------------------------------------------------------------
// Checkpoint-store integrity: the sampled fast-forward checkpoints under
// `checkpoints/` are held to the same discipline, proven end to end
// against the real binary (the store is installed by the CLI).

fn dmdc(cwd: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmdc"))
        .current_dir(cwd)
        .args(args)
        .output()
        .expect("spawn dmdc")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "dmdc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The `[profile] checkpoint store: ...` line from a `--profile` run.
fn store_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr)
        .lines()
        .find(|l| l.starts_with("[profile] checkpoint store:"))
        .unwrap_or_else(|| {
            panic!(
                "no checkpoint-store profile line in: {}",
                String::from_utf8_lossy(&out.stderr)
            )
        })
        .to_string()
}

#[test]
fn damaged_checkpoints_are_quarantined_and_regenerated() {
    let wd = cache_dir("dmdc-ckpt-integrity-wd");
    std::fs::create_dir_all(&wd).unwrap();
    const RUN: &[&str] = &[
        "run",
        "--workload",
        "histo",
        "--policy",
        "dmdc-global",
        "--scale",
        "default",
        "--sampled",
        "--profile",
    ];

    // Cold: every window misses, fast-forwards, and seals a checkpoint.
    let cold = dmdc(&wd, RUN);
    let reference = stdout(&cold);
    assert!(
        store_line(&cold).contains("0 hits, 24 misses, 24 stored, 0 corrupt"),
        "cold run must populate the store, got: {}",
        store_line(&cold)
    );
    let ckpt_dir = wd.join("target/dmdc-cache/checkpoints");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 24, "one sealed checkpoint per window");

    // Damage three entries three different ways.
    let truncated = std::fs::read(&entries[0]).unwrap();
    std::fs::write(&entries[0], &truncated[..truncated.len() / 2]).unwrap();
    let mut flipped = std::fs::read(&entries[1]).unwrap();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x04;
    std::fs::write(&entries[1], flipped).unwrap();
    std::fs::write(&entries[2], b"this was never a sealed checkpoint").unwrap();

    // The damaged windows degrade to misses: quarantined, re-fast-forwarded
    // and re-sealed, with the report still byte-identical.
    let repair = dmdc(&wd, RUN);
    assert_eq!(stdout(&repair), reference, "repair run drifted");
    assert!(
        store_line(&repair).contains("21 hits, 3 misses, 3 stored, 3 corrupt, 3 quarantined"),
        "want quarantine-and-regenerate counters, got: {}",
        store_line(&repair)
    );
    let quarantined = std::fs::read_dir(ckpt_dir.join("quarantine"))
        .expect("quarantine dir exists")
        .flatten()
        .count();
    assert_eq!(
        quarantined, 3,
        "damaged checkpoints preserved for post-mortem"
    );

    // The regenerated entries are trusted again: a third run is all hits.
    let warm = dmdc(&wd, RUN);
    assert_eq!(stdout(&warm), reference, "warm run drifted");
    assert!(
        store_line(&warm).contains("24 hits, 0 misses, 0 stored, 0 corrupt"),
        "repaired store must serve every window, got: {}",
        store_line(&warm)
    );
}
