//! Differential gates for the block-compiled fast-forward engine:
//!
//! * every registry workload and a stream of random fuzz kernels run
//!   through `Emulator::run_silent` (the block interpreter) and through
//!   plain `Emulator::step`, asserting identical retired counts, pcs,
//!   halt flags and `state_checksum` — including at partial-block stop
//!   targets and on faulting programs;
//! * report artifacts stay byte-identical: a sampled run's text output
//!   is pinned against a committed golden (cold, checkpoint-warm and
//!   uncached runs must all match it), and one registry experiment's
//!   JSON and CSV renderings are pinned alongside the text snapshots
//!   that `tests/golden_snapshots.rs` already enforces.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::Arc;

use dmdc::core::cache::CellCache;
use dmdc::core::experiments::{registry, run_experiment};
use dmdc::core::runner::set_global_cell_cache;
use dmdc::isa::{BlockCode, EmuError, Emulator};
use dmdc::workloads::{full_suite, FuzzKernel, Scale, Workload};
use proptest::prelude::*;

/// Runs a block-compiled emulator and a stepped reference to the same
/// retired-count target, asserting bit-identical outcomes.
fn assert_block_equivalent(w: &Workload, targets: &[u64]) {
    let code = BlockCode::compile(&w.program);
    for &t in targets {
        let mut fast = Emulator::new(&w.program);
        let mut slow = Emulator::new(&w.program);
        let fast_err = fast.run_silent(&code, t).err();
        let slow_err = (|| -> Result<(), EmuError> {
            while !slow.halted() && slow.retired() < t {
                slow.step()?;
            }
            Ok(())
        })()
        .err();
        assert_eq!(
            fast_err, slow_err,
            "{}: error mismatch at target {t}",
            w.name
        );
        assert_eq!(
            fast.retired(),
            slow.retired(),
            "{}: retired mismatch at target {t}",
            w.name
        );
        assert_eq!(
            fast.pc(),
            slow.pc(),
            "{}: pc mismatch at target {t}",
            w.name
        );
        assert_eq!(
            fast.halted(),
            slow.halted(),
            "{}: halt mismatch at target {t}",
            w.name
        );
        assert_eq!(
            fast.state_checksum(),
            slow.state_checksum(),
            "{}: state checksum mismatch at target {t}",
            w.name
        );
    }
}

/// The workload's dynamic instruction count (via the block engine; its
/// agreement with stepping is what the callers then assert).
fn population(w: &Workload) -> u64 {
    let code = BlockCode::compile(&w.program);
    let mut emu = Emulator::new(&w.program);
    emu.run_silent(&code, u64::MAX)
        .expect("registry workloads halt");
    emu.retired()
}

#[test]
fn every_registry_workload_matches_step_at_block_boundaries() {
    // Smoke scale: cheap enough to probe partial-block stop targets on
    // both sides of the halt.
    for w in full_suite(Scale::Smoke) {
        let n = population(&w);
        let targets = [0, 1, 2, n / 3, n / 2, n - 1, n, n + 10];
        assert_block_equivalent(&w, &targets);
    }
}

#[test]
fn every_default_scale_workload_matches_step_to_halt() {
    // Default scale: one full run per workload, pinning the end state
    // the sampling oracle depends on.
    for w in full_suite(Scale::Default) {
        let n = population(&w);
        assert_block_equivalent(&w, &[n]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random fuzz kernels (the same generator the differential fuzz
    /// harness uses) agree between the block interpreter and step(),
    /// both to halt and at an arbitrary mid-run stop target.
    #[test]
    fn fuzz_kernels_match_step(seed in any::<u64>(), index in 0u64..1024, cut in 1u64..5_000) {
        let w = FuzzKernel::generate(seed, index).build();
        let n = population(&w);
        prop_assert!(n > 0);
        assert_block_equivalent(&w, &[cut.min(n.saturating_sub(1)), n, n + 7]);
    }
}

// ---------------------------------------------------------------------
// Artifact byte-identity gates.

fn workdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dmdc(cwd: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmdc"))
        .current_dir(cwd)
        .args(args)
        .output()
        .expect("spawn dmdc")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "dmdc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn sampled_run_output_matches_golden_cold_warm_and_uncached() {
    const RUN: &[&str] = &[
        "run",
        "--workload",
        "histo",
        "--policy",
        "dmdc-global",
        "--scale",
        "default",
        "--sampled",
    ];
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/sampled/histo-dmdc-global-default.txt");
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing sampled golden {}: {e}", golden.display()));

    let wd = workdir("dmdc-sampled-golden-wd");
    let mut uncached = RUN.to_vec();
    uncached.push("--no-cache");
    assert_eq!(
        stdout(&dmdc(&wd, &uncached)),
        expected,
        "uncached sampled run drifted from {}",
        golden.display()
    );
    // Cold: populates the checkpoint store. Warm: restores every window
    // from it and fast-forwards nothing. All byte-identical.
    assert_eq!(
        stdout(&dmdc(&wd, RUN)),
        expected,
        "cold sampled run drifted"
    );
    assert_eq!(
        stdout(&dmdc(&wd, RUN)),
        expected,
        "warm sampled run drifted"
    );
}

#[test]
fn experiment_json_and_csv_match_goldens() {
    let cache_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("dmdc-cache-format-golden-test");
    set_global_cell_cache(Some(Arc::new(CellCache::new(cache_dir))));
    let exp = registry()
        .iter()
        .find(|e| e.id() == "fig2")
        .expect("fig2 is in the registry");
    let report = run_experiment(*exp, Scale::Smoke);
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/formats");
    for (ext, actual) in [("json", report.json()), ("csv", report.csv())] {
        let path = golden_dir.join(format!("fig2.{ext}"));
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        assert_eq!(
            actual,
            expected,
            "fig2 {ext} drifted from {}",
            path.display()
        );
    }
}
