//! The parallel runner must be invisible in the output: any figure or
//! table rendered with `--jobs N` must be byte-identical to the serial
//! (`--jobs 1`) rendering, and the emulator oracle must be consulted
//! once per distinct workload regardless of how many cells share it.
//!
//! This file holds a single test because the worker-count override is
//! process-global; keeping it alone in its own integration-test binary
//! avoids cross-test races.

use dmdc::core::experiments::{self, PolicyKind};
use dmdc::core::runner::{set_default_jobs, Engine, RunSpec};
use dmdc::ooo::CoreConfig;
use dmdc::workloads::{fp_suite, int_suite, Scale, Workload};

/// A tiny two-workload set (one INT, one FP) so the test stays fast.
fn mini() -> Vec<Workload> {
    vec![
        int_suite(Scale::Smoke).remove(6),
        fp_suite(Scale::Smoke).remove(1),
    ]
}

#[test]
fn rendered_tables_are_byte_identical_at_any_job_count() {
    let workloads = mini();
    let config = CoreConfig::config2();

    set_default_jobs(1);
    let serial_fig2 = experiments::fig2_on(&workloads, &config).render();
    let serial_table2 = experiments::window_stats_on(&workloads, &config, false).render();

    set_default_jobs(4);
    let parallel_fig2 = experiments::fig2_on(&workloads, &config).render();
    let parallel_table2 = experiments::window_stats_on(&workloads, &config, false).render();

    set_default_jobs(0);

    assert_eq!(
        serial_fig2, parallel_fig2,
        "fig2 must not depend on the worker count"
    );
    assert_eq!(
        serial_table2, parallel_table2,
        "table2 must not depend on the worker count"
    );

    // The engine the regenerators use is the same one exposed directly;
    // confirm the oracle dedupes across policies sharing a workload.
    let specs: Vec<RunSpec> = (0..workloads.len())
        .flat_map(|i| {
            [
                RunSpec::new(i, &config, PolicyKind::Baseline),
                RunSpec::new(i, &config, PolicyKind::DmdcGlobal),
                RunSpec::new(i, &config, PolicyKind::DmdcLocal),
            ]
        })
        .collect();
    let engine = Engine::with_jobs(&workloads, 4);
    let runs = engine.run_all(&specs);
    assert_eq!(runs.len(), specs.len());
    let (hits, misses) = engine.oracle_stats();
    assert_eq!(
        misses,
        workloads.len() as u64,
        "one emulation per distinct workload"
    );
    assert_eq!(
        hits,
        (specs.len() - workloads.len()) as u64,
        "every other cell hit the cache"
    );
}
