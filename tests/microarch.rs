//! Microarchitectural edge cases: resource-limit stalls, the lifted
//! in-flight-load limit under DMDC, and trace/commit-log plumbing.

use dmdc::core::experiments::{run_workload, PolicyKind};
use dmdc::isa::{Assembler, Program};
use dmdc::ooo::{CoreConfig, SimOptions, Simulator};
use dmdc::types::Addr;
use dmdc::workloads::{int_suite, Scale};

/// A long stream of independent cold-miss loads: memory-level parallelism
/// is limited purely by how many loads can be in flight.
fn mlp_program() -> Program {
    // 640 loads, each to a distinct 128B line (cold in all caches), four
    // per iteration so loads dominate the instruction window and the LQ —
    // not the ROB — caps memory-level parallelism.
    Assembler::new()
        .assemble(
            "        li   x1, 0x40000
                     li   x2, 0
                     li   x3, 160
             loop:   slli x4, x2, 9       # 4 lines per iteration
                     add  x4, x4, x1
                     ld   x5, 0(x4)
                     ld   x6, 128(x4)
                     ld   x7, 256(x4)
                     ld   x8, 384(x4)
                     addi x2, x2, 1
                     blt  x2, x3, loop
                     add  x28, x5, x6
                     halt",
        )
        .unwrap()
        .with_data(Addr(0x4_0000), vec![0u8; 160 * 512])
}

#[test]
fn dmdc_beats_baseline_on_mlp_bound_code() {
    // The paper (§6.2.1): "without the associative LQ, the limit on the
    // number of in-flight load instructions can be easily made much
    // higher" — which shows up as speedups on load-limited code.
    let program = mlp_program();
    // Plenty of physical registers, so the in-flight-load limit — not
    // rename — caps memory-level parallelism (config 2 otherwise).
    let mut config = CoreConfig::config2(); // LQ 96 vs ROB 256
    config.int_regs = 400;
    let mut base = Simulator::new(
        &program,
        config.clone(),
        PolicyKind::Baseline.build(&config),
    );
    let base_r = base.run(SimOptions::default()).unwrap();
    let mut dmdc = Simulator::new(
        &program,
        config.clone(),
        PolicyKind::DmdcGlobal.build(&config),
    );
    let dmdc_r = dmdc.run(SimOptions::default()).unwrap();
    assert_eq!(base_r.checksum, dmdc_r.checksum);
    assert!(
        dmdc_r.stats.cycles < base_r.stats.cycles,
        "DMDC ({}) should beat the LQ-limited baseline ({}) on MLP-bound code",
        dmdc_r.stats.cycles,
        base_r.stats.cycles
    );
}

#[test]
fn starved_register_file_still_correct() {
    // 33 physical registers = exactly one rename slot: the machine degrades
    // to near-serial execution but must stay architecturally exact.
    let mut config = CoreConfig::config2();
    config.int_regs = 34;
    config.fp_regs = 34;
    for w in &int_suite(Scale::Smoke)[..2] {
        let r = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        assert!(
            r.stats.ipc() < 1.5,
            "{}: starved machine cannot be fast",
            w.name
        );
    }
}

#[test]
fn tiny_queues_still_correct() {
    let mut config = CoreConfig::config2();
    config.int_iq_size = 4;
    config.fp_iq_size = 4;
    config.lq_size = 4;
    config.sq_size = 4;
    config.rob_size = 16;
    for w in &int_suite(Scale::Smoke)[..3] {
        run_workload(w, &config, &PolicyKind::Baseline, SimOptions::default());
        run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
    }
}

#[test]
fn narrow_machine_still_correct() {
    let mut config = CoreConfig::config1();
    config.fetch_width = 1;
    config.dispatch_width = 1;
    config.issue_width = 1;
    config.commit_width = 1;
    config.int_alu_units = 1;
    config.int_muldiv_units = 1;
    config.fp_alu_units = 1;
    config.fp_muldiv_units = 1;
    config.dcache_ports = 1;
    let w = &int_suite(Scale::Smoke)[6]; // histo
    let r = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
    assert!(
        r.stats.ipc() <= 1.0 + 1e-9,
        "a 1-wide machine cannot exceed IPC 1"
    );
}

#[test]
fn trace_records_full_lifecycles() {
    let program = Assembler::new()
        .assemble("li x1, 3\nmuli x2, x1, 5\nhalt")
        .unwrap();
    let config = CoreConfig::config2();
    let mut sim = Simulator::new(
        &program,
        config.clone(),
        PolicyKind::Baseline.build(&config),
    );
    let opts = SimOptions {
        trace_capacity: 64,
        ..SimOptions::default()
    };
    sim.run(opts).unwrap();
    let rendered = sim.trace().render();
    for needle in ["D@", "I@", "W@", "C@"] {
        assert!(
            rendered.contains(needle),
            "missing {needle} in:\n{rendered}"
        );
    }
    // Three instructions, each dispatched and committed.
    assert_eq!(rendered.lines().count(), 3, "{rendered}");
}

#[test]
fn commit_log_off_by_default() {
    let program = Assembler::new().assemble("nop\nhalt").unwrap();
    let config = CoreConfig::config2();
    let mut sim = Simulator::new(
        &program,
        config.clone(),
        PolicyKind::Baseline.build(&config),
    );
    let r = sim.run(SimOptions::default()).unwrap();
    assert!(r.commit_log.is_empty());
}
