//! Golden-snapshot tests: the smoke-scale text report of every registry
//! experiment must stay byte-identical to the committed snapshot under
//! `tests/golden/`.
//!
//! The snapshots pin the default CLI output — `dmdc experiment <id>`
//! prints exactly `Report::text()` to stdout — so any change to table
//! layout, number formatting or the measurements themselves shows up as
//! a diff against a reviewable text file. To regenerate after an
//! intentional change:
//!
//! ```text
//! for id in $(target/release/dmdc list | ...); do
//!     target/release/dmdc experiment $id --scale smoke --no-cache \
//!         > tests/golden/$id.txt
//! done
//! ```

use std::sync::Arc;

use dmdc::core::cache::CellCache;
use dmdc::core::experiments::{registry, run_experiment};
use dmdc::core::runner::set_global_cell_cache;
use dmdc::workloads::Scale;

#[test]
fn every_registry_experiment_matches_its_golden_snapshot() {
    // Registry experiments overlap heavily (the window and replay tables
    // run the same cells, for instance); a cache keeps this binary fast
    // without changing any output — cells round-trip verbatim, which
    // `tests/cell_cache.rs` proves independently.
    let cache_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("dmdc-cache-golden-test");
    set_global_cell_cache(Some(Arc::new(CellCache::new(cache_dir))));

    let golden_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    for exp in registry() {
        let path = golden_dir.join(format!("{}.txt", exp.id()));
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
        let actual = run_experiment(*exp, Scale::Smoke).text();
        assert_eq!(
            actual,
            expected,
            "experiment `{}` drifted from {}",
            exp.id(),
            path.display()
        );
    }
}

#[test]
fn every_golden_snapshot_belongs_to_a_registry_experiment() {
    let golden_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    for entry in std::fs::read_dir(&golden_dir).expect("tests/golden missing") {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_dir() {
            continue; // subdirectories hold non-experiment goldens (audit/)
        }
        let name = entry.file_name().into_string().unwrap();
        let id = name
            .strip_suffix(".txt")
            .unwrap_or_else(|| panic!("unexpected file `{name}` in tests/golden (want <id>.txt)"));
        assert!(
            ids.contains(&id),
            "stale snapshot `{name}`: no registry experiment with id `{id}`"
        );
    }
}
