//! Black-box tests for `dmdc serve`, end to end against the real binary:
//! boot the daemon on an ephemeral port, drive it over HTTP, and prove
//! the service contract — submit/poll/fetch, single-flight coalescing of
//! identical submissions, structured quota rejection, graceful drain,
//! and kill-9-then-restart recovery with byte-identical results.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dmdc::core::service::http;
use dmdc::core::service::json;

/// A fresh state directory under `target/` for one test.
fn state_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One running daemon. Killed on drop so a failing test can't leak a
/// listener.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Boots `dmdc serve` on an ephemeral port and waits (with a
    /// deadline) for the printed address.
    fn boot(state: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_dmdc"))
            .arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--state-dir")
            .arg(state)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn dmdc serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let mut lines = std::io::BufReader::new(stdout).lines();
            while let Some(Ok(line)) = lines.next() {
                let _ = tx.send(line);
            }
        });
        let deadline = Duration::from_secs(30);
        let addr = loop {
            let line = rx
                .recv_timeout(deadline)
                .expect("daemon prints its address before the deadline");
            if let Some(addr) = line.strip_prefix("dmdc serve: listening on ") {
                break addr.trim().to_string();
            }
        };
        Daemon { child, addr }
    }

    fn post(&self, path: &str, body: &str) -> (u16, String) {
        http::request(&self.addr, "POST", path, Some(body)).expect("POST")
    }

    fn get(&self, path: &str) -> (u16, String) {
        http::request(&self.addr, "GET", path, None).expect("GET")
    }

    /// Polls `/jobs/<id>/result` until it leaves 202, returning the
    /// final `(status, payload)`.
    fn await_result(&self, id: &str) -> (u16, String) {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (status, payload) = self.get(&format!("/jobs/{id}/result"));
            if status != 202 {
                return (status, payload);
            }
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Graceful shutdown; returns true if the process exited cleanly.
    fn shutdown(mut self) -> bool {
        let _ = self.post("/shutdown", "");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("wait on daemon") {
                Some(status) => return status.success(),
                None if Instant::now() > deadline => return false,
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn cell_body(workload: &str, client: &str) -> String {
    format!(
        "{{\"kind\": \"cell\", \"workload\": \"{workload}\", \"policy\": \"baseline\", \
         \"scale\": \"smoke\", \"client\": \"{client}\"}}"
    )
}

fn metric(doc: &json::Json, group: &str, name: &str) -> u64 {
    doc.get(group)
        .and_then(|g| g.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("metrics missing {group}.{name}"))
}

#[test]
fn submit_poll_fetch_roundtrip() {
    let state = state_dir("dmdc-service-roundtrip");
    let daemon = Daemon::boot(&state, &[]);

    let (status, body) = daemon.get("/health");
    assert_eq!((status, body.as_str()), (200, "{\"ok\": true}\n"));

    let (status, reply) = daemon.post("/jobs", &cell_body("histo", "t"));
    assert_eq!(status, 200, "{reply}");
    let doc = json::parse(&reply).unwrap();
    let id = doc.get("id").unwrap().as_str().unwrap().to_string();
    assert_eq!(id, "job-1");

    // The status document tracks the job through its lifecycle.
    let (status, status_doc) = daemon.get(&format!("/jobs/{id}"));
    assert_eq!(status, 200);
    let doc = json::parse(&status_doc).unwrap();
    assert!(matches!(
        doc.get("state").unwrap().as_str().unwrap(),
        "queued" | "running" | "done"
    ));
    assert_eq!(
        doc.get("spec").unwrap().get("workload").unwrap().as_str(),
        Some("histo")
    );

    // The result is the same report document `--format json` emits.
    let (status, payload) = daemon.await_result(&id);
    assert_eq!(status, 200, "{payload}");
    let report = json::parse(&payload).unwrap();
    assert_eq!(report.get("experiment").unwrap().as_str(), Some("cell"));
    let tables = report.get("tables").unwrap().as_array().unwrap();
    let rows = tables[0].get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows[0].as_array().unwrap()[0].as_str(), Some("histo"));

    // Fetching again returns the identical stored bytes.
    let (status, again) = daemon.get(&format!("/jobs/{id}/result"));
    assert_eq!((status, again == payload), (200, true));

    // Unknown ids and routes are structured errors.
    assert_eq!(daemon.get("/jobs/job-999").0, 404);
    assert_eq!(daemon.get("/jobs/job-999/result").0, 404);
    assert_eq!(daemon.get("/no-such-route").0, 404);
    assert_eq!(daemon.post("/jobs", "not json").0, 400);
    assert_eq!(
        daemon
            .post("/jobs", "{\"kind\": \"cell\", \"workload\": \"nope\"}")
            .0,
        400
    );

    assert!(daemon.shutdown(), "graceful shutdown exits cleanly");
}

#[test]
fn concurrent_identical_submissions_coalesce_to_one_job() {
    const N: usize = 10;
    let state = state_dir("dmdc-service-coalesce");
    // Boot paused so every submission arrives while the job is queued —
    // the coalescing window is open deterministically.
    let daemon = Daemon::boot(&state, &["--paused"]);

    let addr = daemon.addr.clone();
    let replies: Vec<(u16, String)> = {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    http::request(&addr, "POST", "/jobs", Some(&cell_body("histo", "swarm")))
                        .expect("POST /jobs")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };

    // Every reply names the same job; exactly one created it.
    let mut created = 0;
    for (status, reply) in &replies {
        assert_eq!(*status, 200, "{reply}");
        let doc = json::parse(reply).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("job-1"));
        if doc.get("coalesced").unwrap().as_bool() == Some(false) {
            created += 1;
        }
    }
    assert_eq!(created, 1, "exactly one submission creates the job");

    let (_, metrics) = daemon.get("/metrics");
    let doc = json::parse(&metrics).unwrap();
    assert_eq!(metric(&doc, "jobs", "submitted"), 1);
    assert_eq!(metric(&doc, "jobs", "coalesced"), (N - 1) as u64);
    assert_eq!(metric(&doc, "jobs", "queue_depth"), 1);

    // Release the queue: the one job runs exactly one simulation.
    assert_eq!(daemon.post("/queue/resume", "").0, 200);
    let (status, _) = daemon.await_result("job-1");
    assert_eq!(status, 200);
    let (_, metrics) = daemon.get("/metrics");
    let doc = json::parse(&metrics).unwrap();
    assert_eq!(metric(&doc, "jobs", "completed"), 1);
    assert_eq!(
        metric(&doc, "cache", "stores"),
        1,
        "one simulation stored one cell"
    );

    assert!(daemon.shutdown());
}

#[test]
fn over_quota_submission_is_a_structured_429() {
    let state = state_dir("dmdc-service-quota");
    let daemon = Daemon::boot(&state, &["--quota", "2", "--paused"]);

    assert_eq!(daemon.post("/jobs", &cell_body("histo", "greedy")).0, 200);
    assert_eq!(daemon.post("/jobs", &cell_body("saxpy", "greedy")).0, 200);
    let (status, reply) = daemon.post("/jobs", &cell_body("crc", "greedy"));
    assert_eq!(status, 429, "{reply}");
    let doc = json::parse(&reply).unwrap();
    assert_eq!(doc.get("error").unwrap().as_str(), Some("quota exceeded"));
    assert_eq!(doc.get("client").unwrap().as_str(), Some("greedy"));
    assert_eq!(doc.get("active").unwrap().as_u64(), Some(2));
    assert_eq!(doc.get("limit").unwrap().as_u64(), Some(2));

    // Quota is per client: another client still gets in. And identical
    // submissions coalesce instead of consuming quota.
    assert_eq!(daemon.post("/jobs", &cell_body("crc", "patient")).0, 200);
    let (status, reply) = daemon.post("/jobs", &cell_body("histo", "greedy"));
    assert_eq!(status, 200);
    let doc = json::parse(&reply).unwrap();
    assert_eq!(doc.get("coalesced").unwrap().as_bool(), Some(true));

    let (_, metrics) = daemon.get("/metrics");
    let doc = json::parse(&metrics).unwrap();
    assert_eq!(metric(&doc, "jobs", "rejected"), 1);

    assert!(daemon.shutdown());
}

#[test]
fn kill9_then_restart_resumes_jobs_byte_identically() {
    // Reference: an undisturbed daemon runs three jobs to completion.
    let ref_state = state_dir("dmdc-service-restart-ref");
    let reference = Daemon::boot(&ref_state, &[]);
    let jobs = [("histo", "10"), ("saxpy", "200"), ("crc", "100")];
    for (workload, priority) in jobs {
        let body = format!(
            "{{\"kind\": \"cell\", \"workload\": \"{workload}\", \"policy\": \"baseline\", \
             \"scale\": \"smoke\", \"client\": \"r\", \"priority\": {priority}}}"
        );
        assert_eq!(reference.post("/jobs", &body).0, 200);
    }
    let expected: Vec<String> = (1..=3)
        .map(|i| {
            let (status, payload) = reference.await_result(&format!("job-{i}"));
            assert_eq!(status, 200, "{payload}");
            payload
        })
        .collect();
    assert!(reference.shutdown());

    // Victim: same three submissions land in a paused queue, then the
    // daemon dies hard — SIGKILL, no drain, no cleanup.
    let state = state_dir("dmdc-service-restart");
    let victim = Daemon::boot(&state, &["--paused"]);
    for (workload, priority) in jobs {
        let body = format!(
            "{{\"kind\": \"cell\", \"workload\": \"{workload}\", \"policy\": \"baseline\", \
             \"scale\": \"smoke\", \"client\": \"r\", \"priority\": {priority}}}"
        );
        assert_eq!(victim.post("/jobs", &body).0, 200);
    }
    drop(victim); // kill -9

    // Restart over the same state dir: the queue comes back and every
    // job completes with bytes identical to the undisturbed run.
    let revived = Daemon::boot(&state, &[]);
    let (_, metrics) = revived.get("/metrics");
    let doc = json::parse(&metrics).unwrap();
    assert_eq!(metric(&doc, "jobs", "recovered"), 3);
    for (i, expected) in expected.iter().enumerate() {
        let id = format!("job-{}", i + 1);
        let (status, payload) = revived.await_result(&id);
        assert_eq!(status, 200, "{payload}");
        assert_eq!(
            &payload, expected,
            "{id} must reproduce the reference bytes"
        );
    }

    // New submissions continue the id sequence past the recovered jobs.
    let (status, reply) = revived.post("/jobs", &cell_body("mm", "r"));
    assert_eq!(status, 200);
    let doc = json::parse(&reply).unwrap();
    assert_eq!(doc.get("id").unwrap().as_str(), Some("job-4"));

    assert!(revived.shutdown());
}

#[test]
fn graceful_drain_finishes_queued_jobs_before_exit() {
    let state = state_dir("dmdc-service-drain");
    let daemon = Daemon::boot(&state, &["--paused"]);
    assert_eq!(daemon.post("/jobs", &cell_body("histo", "d")).0, 200);
    assert_eq!(daemon.post("/jobs", &cell_body("crc", "d")).0, 200);

    // Shutdown with the queue paused and full: drain must override the
    // pause, run both jobs, persist both results, then exit cleanly.
    assert!(daemon.shutdown(), "drain exits cleanly");
    for id in ["job-1", "job-2"] {
        let path = state.join("results").join(format!("{id}.result"));
        assert!(path.is_file(), "{id} result persisted during drain");
    }
}
