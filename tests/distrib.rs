//! End-to-end tests for the distributed worker fleet: a coordinator
//! sharding a real suite across `dmdc worker` processes must produce
//! stdout byte-identical to the single-process run — under no faults,
//! under every distributed chaos mode, and with zero workers at all
//! (the local-serial degradation path).
//!
//! Each scenario runs in its own working directory so the
//! content-addressed caches (`target/dmdc-cache/` relative to the cwd)
//! are isolated: the distributed run cannot borrow cells the
//! single-process run computed, or vice versa.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dmdc(cwd: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmdc"))
        .current_dir(cwd)
        .args(args)
        .output()
        .expect("spawn dmdc")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const SUITE: &[&str] = &["suite", "--scale", "smoke", "--policy", "dmdc-global"];

fn suite_with<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = SUITE.to_vec();
    args.extend(extra);
    args
}

/// The tentpole acceptance sweep in one test (the scenarios share the
/// single-process golden, and serializing them keeps the machine's
/// cores for the workers): a healthy 2-worker fleet, a fleet whose
/// workers get killed mid-run, stale-claim + partial-upload chaos, and
/// the zero-worker degradation ladder all produce byte-identical
/// reports.
#[test]
fn distributed_runs_are_byte_identical_to_single_process() {
    let single_dir = workdir("dmdc-distrib-single");
    let single = dmdc(&single_dir, SUITE);
    assert!(single.status.success(), "single: {}", stderr(&single));
    let golden = stdout(&single);
    assert!(!golden.is_empty());

    // Healthy fleet: 2 workers, nothing injected.
    let dir = workdir("dmdc-distrib-fleet");
    let out = dmdc(
        &dir,
        &suite_with(&["--distrib", "--workers", "2", "--lease-ttl", "2000"]),
    );
    assert!(out.status.success(), "fleet: {}", stderr(&out));
    assert_eq!(stdout(&out), golden, "2-worker report drifted");
    // The run left a durable, sealed lease trail.
    let leases = dir.join("target/dmdc-runs/distrib/leases");
    let records = std::fs::read_dir(&leases)
        .unwrap_or_else(|e| panic!("no lease records at {}: {e}", leases.display()))
        .count();
    assert!(records > 0, "no lease records written");

    // Chaos: every worker aborts after 2 cells, dying with a lease held
    // and its result already published. The coordinator must reclaim
    // the leases and finish the run itself — same bytes.
    let dir = workdir("dmdc-distrib-kill");
    let out = dmdc(
        &dir,
        &suite_with(&[
            "--distrib",
            "--workers",
            "2",
            "--lease-ttl",
            "500",
            "--inject-faults",
            "seed=1,worker-kill-after=2",
        ]),
    );
    assert!(out.status.success(), "kill: {}", stderr(&out));
    assert_eq!(stdout(&out), golden, "report drifted after worker kills");
    assert!(
        stderr(&out).contains("reclaimed cell"),
        "worker kills must surface as lease reclaims:\n{}",
        stderr(&out)
    );

    // Chaos: the first claim of each worker sits past its TTL before
    // executing (stale-lease double-claim), and every 3rd store write
    // is truncated (partial upload, caught by completion verification).
    let dir = workdir("dmdc-distrib-stale");
    let out = dmdc(
        &dir,
        &suite_with(&[
            "--distrib",
            "--workers",
            "2",
            "--lease-ttl",
            "300",
            "--inject-faults",
            "seed=2,stale-claim=700,partial-upload=3",
        ]),
    );
    assert!(out.status.success(), "stale: {}", stderr(&out));
    assert_eq!(
        stdout(&out),
        golden,
        "report drifted under stale-claim/partial-upload chaos"
    );
}

/// With no workers at all the coordinator degrades to local serial
/// execution after the grace period — the run terminates on its own and
/// the report is still byte-identical.
#[test]
fn zero_workers_degrades_to_local_serial_execution() {
    let single_dir = workdir("dmdc-distrib-zero-single");
    let single = dmdc(&single_dir, SUITE);
    assert!(single.status.success(), "single: {}", stderr(&single));

    let dir = workdir("dmdc-distrib-zero");
    let out = dmdc(
        &dir,
        &suite_with(&[
            "--distrib",
            "--workers",
            "0",
            "--lease-ttl",
            "200",
            "--grace",
            "100",
        ]),
    );
    assert!(out.status.success(), "zero-worker: {}", stderr(&out));
    assert_eq!(
        stdout(&out),
        stdout(&single),
        "degraded run drifted from the single-process report"
    );
    assert!(
        stderr(&out).contains("locally"),
        "degradation must announce local execution:\n{}",
        stderr(&out)
    );
}

/// A worker pointed at a dead coordinator retries with backoff and then
/// fails with a clear terminal error instead of hanging forever.
#[test]
fn orphan_worker_fails_with_terminal_error() {
    let dir = workdir("dmdc-distrib-orphan");
    let started = std::time::Instant::now();
    // Port 1 is never listening; the client's retry budget for /plan is
    // bounded, so this returns on its own.
    let out = dmdc(
        &dir,
        &["worker", "--connect", "127.0.0.1:1", "--id", "orphan"],
    );
    assert!(!out.status.success(), "orphan worker must fail");
    let err = stderr(&out);
    assert!(
        err.contains("unreachable after"),
        "terminal error must say what was retried:\n{err}"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(60),
        "orphan worker must give up in bounded time"
    );
}
