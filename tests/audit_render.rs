//! Golden snapshot for the invariant auditor's text rendering: violation
//! lines and the report header are what `dmdc fuzz` prints and what repro
//! files classify failures by, so their exact shape is pinned under
//! `tests/golden/audit/report.txt`. Regenerate by deleting the file and
//! re-running this test with `BLESS_AUDIT_GOLDEN=1`.

use dmdc::ooo::{AuditKind, AuditReport, AuditViolation};
use dmdc::types::{AccessSize, Addr, Age, Cycle, MemSpan};

fn sample_report() -> AuditReport {
    AuditReport {
        violations: vec![
            AuditViolation {
                kind: AuditKind::MissedReplay,
                cycle: Cycle(120),
                age: Age(42),
                pc: 7,
                span: Some(MemSpan::new(Addr(0x30_0008), AccessSize::B4)),
                policy: "dmdc-global-1024".to_string(),
                detail: "stale value committed".to_string(),
            },
            AuditViolation {
                kind: AuditKind::CommitOrder,
                cycle: Cycle(7),
                age: Age(3),
                pc: 0,
                span: None,
                policy: "baseline".to_string(),
                detail: "age #3 after age #9".to_string(),
            },
            AuditViolation {
                kind: AuditKind::SafeStoreYoungerLoad,
                cycle: Cycle(999_999),
                age: Age(100),
                pc: 64,
                span: Some(MemSpan::new(Addr(0x40_2000), AccessSize::B8)),
                policy: "dmdc-local-1024".to_string(),
                detail: "store declared safe over younger issued load age 105".to_string(),
            },
        ],
        dropped: 2,
        scans: 55_000,
        commits: 120_000,
    }
}

#[test]
fn audit_report_rendering_matches_golden() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("audit")
        .join("report.txt");
    let actual = sample_report().render();
    if std::env::var_os("BLESS_AUDIT_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); re-run with BLESS_AUDIT_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "audit rendering drifted from {}",
        path.display()
    );
}

#[test]
fn violation_line_shape_is_stable() {
    // The exact single-line shape the fuzzer's failure details embed.
    let v = &sample_report().violations[0];
    assert_eq!(
        v.to_string(),
        "audit[missed-replay] cycle 120 age 42 pc 7 span 0x300008+4 \
         policy dmdc-global-1024: stale value committed"
    );
    let spanless = &sample_report().violations[1];
    assert!(spanless.to_string().contains(" span - "), "{spanless}");
}

#[test]
fn kind_labels_round_trip() {
    for kind in [
        AuditKind::CommitOrder,
        AuditKind::QueueShape,
        AuditKind::QueueRobSync,
        AuditKind::SafeStoreYoungerLoad,
        AuditKind::StaleSafeLoad,
        AuditKind::MissedReplay,
        AuditKind::LockstepPc,
        AuditKind::LockstepValue,
        AuditKind::PolicyState,
        AuditKind::StateDivergence,
        AuditKind::Panic,
    ] {
        assert_eq!(AuditKind::parse_label(kind.label()), Some(kind));
    }
    assert_eq!(AuditKind::parse_label("warp-core-breach"), None);
}
