//! Reproducibility: identical inputs produce bit-identical simulations,
//! including under injected invalidation traffic (which is seeded).

use dmdc::core::experiments::{run_workload, PolicyKind};
use dmdc::ooo::{CoreConfig, SimOptions};
use dmdc::workloads::{int_suite, Scale, SyntheticKernel};

#[test]
fn repeated_runs_are_bit_identical() {
    let config = CoreConfig::config2();
    let w = &int_suite(Scale::Smoke)[6]; // histo: replays, misses, windows
    let a = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
    let b = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
    assert_eq!(a.stats, b.stats);
}

#[test]
fn invalidation_stream_is_seeded() {
    let config = CoreConfig::config2();
    let w = SyntheticKernel::new(3_000).store_load_gap(2).build();
    let opts = |seed| SimOptions {
        inval_per_kcycle: 50.0,
        inval_seed: seed,
        ..SimOptions::default()
    };
    let a = run_workload(&w, &config, &PolicyKind::DmdcCoherent, opts(7));
    let b = run_workload(&w, &config, &PolicyKind::DmdcCoherent, opts(7));
    let c = run_workload(&w, &config, &PolicyKind::DmdcCoherent, opts(8));
    assert_eq!(a.stats, b.stats, "same seed, same run");
    assert!(a.stats.policy.invalidations > 0);
    assert_ne!(
        a.stats, c.stats,
        "different seeds should perturb the run somewhere"
    );
}

#[test]
fn stats_are_internally_consistent() {
    let config = CoreConfig::config2();
    for w in &int_suite(Scale::Smoke) {
        let r = run_workload(w, &config, &PolicyKind::DmdcGlobal, SimOptions::default());
        let s = &r.stats;
        assert!(s.fetched >= s.committed, "{}: fetched < committed", w.name);
        assert!(s.loads + s.stores < s.committed, "{}", w.name);
        assert_eq!(
            s.policy.safe_loads + s.policy.unsafe_loads + s.load_rejections,
            s.energy.sq_cam_searches,
            "{}: every load issue attempt (successful or rejected) searches the SQ",
            w.name
        );
        assert!(
            s.policy.window_safe_loads <= s.policy.window_loads,
            "{}: safe window loads exceed window loads",
            w.name
        );
        assert!(
            s.policy.single_store_windows <= s.policy.checking_windows,
            "{}",
            w.name
        );
        assert!(s.policy.checking_mode_cycles <= s.cycles, "{}", w.name);
    }
}
