//! Every committed `BENCH_pr*.json` artifact must parse as strict JSON
//! and carry the fields the benchmark record format promises, so a
//! malformed or hand-mangled artifact fails CI instead of silently
//! rotting. The parser is the service's own [`json`] module — the same
//! code that rejects malformed submissions on the wire.
//!
//! [`json`]: dmdc::core::service::json

use std::path::PathBuf;

use dmdc::core::service::json::{self, Json};

fn bench_files() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<PathBuf> = std::fs::read_dir(&root)
        .expect("repo root")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_pr") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

#[test]
fn bench_artifacts_exist() {
    assert!(
        !bench_files().is_empty(),
        "no BENCH_pr*.json artifacts found — the discovery glob is broken"
    );
}

#[test]
fn every_bench_artifact_parses_with_required_fields() {
    for path in bench_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"));

        // The record header every artifact carries.
        let pr = doc
            .get("pr")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("{name}: missing numeric `pr`"));
        let expected = format!("BENCH_pr{pr}.json");
        assert_eq!(name, expected, "`pr` field disagrees with the filename");
        for field in ["title", "date", "method"] {
            let value = doc
                .get(field)
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{name}: missing string `{field}`"));
            assert!(!value.is_empty(), "{name}: `{field}` is empty");
        }
        let date = doc.get("date").and_then(Json::as_str).unwrap();
        assert!(
            date.len() == 10 && date.as_bytes()[4] == b'-' && date.as_bytes()[7] == b'-',
            "{name}: `date` is not YYYY-MM-DD: {date}"
        );
        doc.get("host")
            .and_then(Json::as_object)
            .unwrap_or_else(|| panic!("{name}: missing object `host`"));

        // Every number anywhere in the artifact must be finite — NaN and
        // Infinity are not JSON and would mean a broken generator.
        assert_finite(&doc, &name);
    }
}

fn assert_finite(value: &Json, name: &str) {
    match value {
        Json::Num(n) => assert!(n.is_finite(), "{name}: non-finite number {n}"),
        Json::Arr(items) => items.iter().for_each(|v| assert_finite(v, name)),
        Json::Obj(members) => members.iter().for_each(|(_, v)| assert_finite(v, name)),
        _ => {}
    }
}

/// The parser itself rejects the corruption modes a truncated or
/// hand-edited artifact produces, so the test above actually bites.
#[test]
fn parser_rejects_malformed_artifacts() {
    for bad in [
        "",
        "{",
        "{\"pr\": }",
        "{\"pr\": 1,}",
        "{\"pr\": 1} trailing",
        "{\"pr\": 01}",
        "{\"pr\": NaN}",
        "{'pr': 1}",
        "{\"pr\": 1 \"title\": \"x\"}",
    ] {
        assert!(
            json::parse(bad).is_err(),
            "parser accepted malformed input: {bad:?}"
        );
    }
}
