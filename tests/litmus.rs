//! Consistency litmus harness for the multi-core timing simulator.
//!
//! For each classic litmus kernel (MP, SB, LB, IRIW) the operational
//! reference executor enumerates the outcomes sequential consistency
//! allows. The timing simulator — out-of-order cores, MESI L1s, delayed
//! invalidation checking — is then run across many deterministic
//! interleavings (seeds vary the per-core start skew and round-robin
//! rotation) under both coherence-capable policies, and every observed
//! outcome must fall inside the reference's allowed set. The forbidden
//! vectors (e.g. IRIW's non-causal `[1,0,1,0]`) must never appear: that
//! is the end-to-end proof that speculative loads plus cross-core
//! invalidations plus commit-time replay add up to SC.

use std::collections::BTreeSet;

use dmdc::core::experiments::PolicyKind;
use dmdc::isa::{enumerate_outcomes, EnumLimits};
use dmdc::ooo::{run_multicore, CoreConfig, MultiCoreOptions};
use dmdc::workloads::litmus_suite;

const SEEDS: u64 = 16;

fn coherent_policies() -> [PolicyKind; 2] {
    [PolicyKind::BaselineCoherent, PolicyKind::DmdcCoherent]
}

#[test]
fn observed_outcomes_stay_inside_the_sc_reference() {
    let config = CoreConfig::config2();
    for kernel in litmus_suite() {
        let allowed = enumerate_outcomes(
            &kernel.program_refs(),
            &kernel.observers,
            EnumLimits::default(),
        )
        .unwrap_or_else(|e| panic!("{}: reference enumeration failed: {e}", kernel.name));
        for f in &kernel.forbidden {
            assert!(
                !allowed.contains(f),
                "{}: forbidden {f:?} is in the reference allowed set",
                kernel.name
            );
        }
        for policy in coherent_policies() {
            let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
            for seed in 0..SEEDS {
                let policies = kernel
                    .programs
                    .iter()
                    .map(|_| policy.build(&config))
                    .collect();
                let opts = MultiCoreOptions {
                    seed,
                    audit: true,
                    ..MultiCoreOptions::default()
                };
                let r = run_multicore(&kernel.program_refs(), &config, policies, &opts)
                    .unwrap_or_else(|e| {
                        panic!("{} seed {seed} under {policy:?}: {e}", kernel.name)
                    });
                assert!(
                    r.coherence_violations.is_empty(),
                    "{} seed {seed} under {policy:?}: {:?}",
                    kernel.name,
                    r.coherence_violations
                );
                for (core, outcome) in r.cores.iter().enumerate() {
                    if let Some(audit) = &outcome.result.audit {
                        assert!(
                            audit.is_clean(),
                            "{} seed {seed} core {core} under {policy:?}:\n{}",
                            kernel.name,
                            audit.render()
                        );
                    }
                }
                let observed = r.observe(&kernel.observers);
                for f in &kernel.forbidden {
                    assert_ne!(
                        &observed, f,
                        "{} seed {seed} under {policy:?}: forbidden outcome observed",
                        kernel.name
                    );
                }
                assert!(
                    allowed.contains(&observed),
                    "{} seed {seed} under {policy:?}: observed {observed:?} is outside \
                     the SC allowed set {allowed:?}",
                    kernel.name
                );
                seen.insert(observed);
            }
            assert!(
                !seen.is_empty(),
                "{} under {policy:?}: no outcomes observed",
                kernel.name
            );
        }
    }
}

#[test]
fn seeds_vary_the_interleaving() {
    // The seeds exist to explore different timings; at least the cycle
    // counts must differ across them, or the sweep is 16 copies of one
    // interleaving.
    let config = CoreConfig::config2();
    let kernel = &litmus_suite()[0];
    let mut cycle_counts: BTreeSet<u64> = BTreeSet::new();
    for seed in 0..SEEDS {
        let policies = kernel
            .programs
            .iter()
            .map(|_| PolicyKind::DmdcCoherent.build(&config))
            .collect();
        let opts = MultiCoreOptions {
            seed,
            audit: false,
            ..MultiCoreOptions::default()
        };
        let r = run_multicore(&kernel.program_refs(), &config, policies, &opts).unwrap();
        cycle_counts.insert(r.cycles);
    }
    assert!(
        cycle_counts.len() > 4,
        "16 seeds produced only {} distinct timings",
        cycle_counts.len()
    );
}
