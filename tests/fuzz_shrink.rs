//! End-to-end fuzzer test: a planted ordering bug (DMDC's commit-time
//! replay verdicts suppressed through the test-only [`Sabotage`] hook)
//! must be *found* by the torture loop, *shrunk* to a tiny kernel that
//! still shows the same violation, and *replayed* bit-for-bit from the
//! written repro file — deterministically for a given seed.

use dmdc::core::experiments::PolicyKind;
use dmdc::core::fuzz::{fuzz, replay_file, FuzzOptions, Repro, Sabotage};
use dmdc::ooo::AuditKind;

fn planted_bug_opts(out_tag: &str) -> FuzzOptions {
    FuzzOptions {
        budget: 50,
        policies: vec![PolicyKind::DmdcGlobal],
        sabotage: Some(Sabotage::SuppressReplays { from: 0 }),
        out_dir: std::env::temp_dir().join(format!("dmdc-fuzz-shrink-{out_tag}")),
        ..FuzzOptions::new(42)
    }
}

#[test]
fn planted_bug_is_found_shrunk_and_replayable() {
    let opts = planted_bug_opts("main");
    let outcome = fuzz(&opts).unwrap();
    let repro = outcome.failure.expect("planted bug must be found");

    // The suppressed replay surfaces as the auditor's missed-replay
    // invariant, and delta-debugging gets the kernel small.
    assert_eq!(repro.kind, AuditKind::MissedReplay.label());
    assert!(
        repro.kernel.ops.len() <= 8,
        "shrunk kernel still has {} ops:\n{}",
        repro.kernel.ops.len(),
        repro.render()
    );

    // The written file parses back to the same repro and still fails the
    // same way when replayed through the public entry point.
    let path = outcome.repro_path.expect("repro file written");
    let (parsed, failure) = replay_file(&path).unwrap();
    assert_eq!(parsed, repro);
    let failure = failure.expect("repro must still reproduce");
    assert_eq!(failure.kind, repro.kind);

    // Round-trip stability: render → parse → render is a fixed point.
    assert_eq!(
        Repro::parse(&repro.render()).unwrap().render(),
        repro.render()
    );

    let _ = std::fs::remove_dir_all(&opts.out_dir);
}

#[test]
fn fuzz_is_deterministic_per_seed() {
    let a_opts = planted_bug_opts("det-a");
    let b_opts = planted_bug_opts("det-b");
    let a = fuzz(&a_opts).unwrap();
    let b = fuzz(&b_opts).unwrap();
    assert_eq!(a.cases, b.cases);
    let (a, b) = (a.failure.unwrap(), b.failure.unwrap());
    assert_eq!(a.render(), b.render(), "same seed, same shrunk repro");
    let _ = std::fs::remove_dir_all(&a_opts.out_dir);
    let _ = std::fs::remove_dir_all(&b_opts.out_dir);
}

#[test]
fn mt_planted_bug_is_found_shrunk_across_threads_and_replayable() {
    // Same planted bug, but on a two-core machine with the coherent DMDC
    // build: the torture loop must find it, ddmin must shrink *both*
    // threads' streams, and the written repro (now carrying `threads 2`
    // sections) must replay to the same failure class.
    let opts = FuzzOptions {
        budget: 30,
        threads: 2,
        policies: vec![PolicyKind::DmdcCoherent],
        sabotage: Some(Sabotage::SuppressReplays { from: 0 }),
        out_dir: std::env::temp_dir().join("dmdc-fuzz-shrink-mt"),
        ..FuzzOptions::new(42)
    };
    let outcome = fuzz(&opts).unwrap();
    let repro = outcome
        .failure
        .expect("planted bug must be found on 2 cores");
    assert_eq!(repro.extra.len(), 1, "repro keeps both threads");
    assert_eq!(repro.kind, AuditKind::MissedReplay.label());
    let total_ops = repro.kernel.ops.len() + repro.extra[0].ops.len();
    assert!(
        total_ops <= 16,
        "shrunk to {total_ops} ops across threads:\n{}",
        repro.render()
    );
    assert!(repro.render().contains("threads 2"));

    let path = outcome.repro_path.expect("repro file written");
    let (parsed, failure) = replay_file(&path).unwrap();
    assert_eq!(parsed, repro);
    assert_eq!(failure.expect("still fails").kind, repro.kind);
    let _ = std::fs::remove_dir_all(&opts.out_dir);
}

#[test]
fn real_policies_pass_the_torture_loop() {
    // No sabotage: the default policy set must survive a fuzz budget with
    // zero auditor violations, panics, or emulator divergence.
    let opts = FuzzOptions {
        budget: 8,
        out_dir: std::env::temp_dir().join("dmdc-fuzz-shrink-clean"),
        ..FuzzOptions::new(7)
    };
    let outcome = fuzz(&opts).unwrap();
    assert!(
        outcome.failure.is_none(),
        "real policy failed:\n{}",
        outcome.failure.unwrap().render()
    );
    let _ = std::fs::remove_dir_all(&opts.out_dir);
}
