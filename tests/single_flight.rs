//! Library-level single-flight coalescing through the engine: two
//! threads racing the *same* cell over a shared cache and flight table
//! must perform exactly one simulation — one thread leads and stores,
//! the other waits and replays the stored cell.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use dmdc::core::cache::CellCache;
use dmdc::core::experiments::PolicyKind;
use dmdc::core::flight::SingleFlight;
use dmdc::core::runner::{Engine, RunSpec};
use dmdc::ooo::CoreConfig;
use dmdc::workloads::{Scale, SyntheticKernel, Workload};

fn cache_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload() -> Workload {
    // Default scale: enough simulated work (~8x smoke) that the second
    // thread reliably arrives while the first is still simulating.
    SyntheticKernel::new(20_000 * Scale::Default.factor())
        .branch_noise(true)
        .build()
}

#[test]
fn racing_threads_coalesce_to_one_simulation() {
    let dir = cache_dir("dmdc-single-flight-test");
    let cache = Arc::new(CellCache::new(&dir));
    let flight = Arc::new(SingleFlight::new());

    let run = {
        let cache = Arc::clone(&cache);
        let flight = Arc::clone(&flight);
        move || {
            let workloads = [workload()];
            let engine = Engine::with_jobs(&workloads, 1)
                .with_cache(Some(cache))
                .with_journal(None)
                .with_flight(Some(flight));
            let spec = RunSpec::new(0, &CoreConfig::config2(), PolicyKind::DmdcGlobal);
            engine.try_run_cell(&spec).expect("cell runs clean")
        }
    };

    // Start the leader, then wait until it owns the flight (its cache
    // miss and join have happened) before releasing the follower.
    let leader = std::thread::spawn(run.clone());
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while flight.counters().led == 0 {
        assert!(std::time::Instant::now() < deadline, "leader never joined");
        std::thread::sleep(Duration::from_millis(1));
    }
    let follower = std::thread::spawn(run);

    let a = leader.join().unwrap();
    let b = follower.join().unwrap();

    // Both threads observed the identical verified cell...
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.stats.export_values(), b.stats.export_values());

    // ...but only one simulation happened: one leader, one coalesced
    // wait, one store. The follower's post-wait lookup replays the
    // leader's stored cell (at least one hit; the follower may also have
    // missed once before joining the flight).
    let fc = flight.counters();
    assert_eq!((fc.led, fc.coalesced), (1, 1), "one leader, one waiter");
    let cc = cache.counters();
    assert_eq!(cc.stores, 1, "exactly one simulation stored the cell");
    assert!(cc.hits >= 1, "the follower replayed the stored cell");
    assert_eq!(flight.waiting(), 0, "nobody left blocked");

    let _ = std::fs::remove_dir_all(&dir);
}
