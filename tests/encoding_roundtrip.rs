//! Binary-encoding coverage over real programs: every instruction of every
//! workload (and a synthetic kernel) must survive encode → decode exactly.
//! This exercises the encoder on the instruction mix real kernels use, not
//! just the proptest-generated distribution.

use dmdc::isa::{decode, encode};
use dmdc::workloads::{full_suite, Scale, SyntheticKernel};

#[test]
fn all_workload_programs_roundtrip_through_machine_code() {
    let mut programs: Vec<_> = full_suite(Scale::Smoke)
        .into_iter()
        .map(|w| w.program)
        .collect();
    programs.push(
        SyntheticKernel::new(10)
            .branch_noise(true)
            .late_store_addr(true)
            .build()
            .program,
    );
    let mut total = 0usize;
    for program in &programs {
        for (pc, &inst) in program.insts().iter().enumerate() {
            let word = encode(inst);
            let back = decode(word).unwrap_or_else(|e| panic!("{}: pc {pc}: {e}", program.name()));
            assert_eq!(inst, back, "{}: pc {pc} ({inst})", program.name());
            total += 1;
        }
    }
    assert!(
        total > 500,
        "expected substantial static coverage, got {total}"
    );
}
