//! `dmdc` — command-line front end for the reproduction.
//!
//! ```text
//! dmdc list                                   # workloads, policies, experiments
//! dmdc run --workload histo --policy dmdc-global [--config 2] [--trace 64]
//! dmdc run --workload synthetic --policy baseline --inval-rate 10
//! dmdc suite --policy dmdc-global [--scale smoke|default|large]
//! dmdc experiment <id>|ablations|all [--format text|json|csv] [--no-cache]
//! dmdc asm path/to/program.s                  # assemble + emulate a file
//! dmdc serve [--addr 127.0.0.1:8181] [--state-dir DIR] [--quota N]
//! dmdc suite --policy dmdc-global --distrib --workers 3   # worker fleet
//! dmdc worker --connect 127.0.0.1:9000                    # join a fleet
//! dmdc submit --workload histo --policy dmdc-global [--wait]
//! dmdc status [--job job-1]                   # poll the daemon
//! dmdc metrics                                # service counters
//! ```
//!
//! `suite` and `experiment` consult the persistent content-addressed cell
//! cache under `target/dmdc-cache/` by default: a repeated invocation
//! replays previously verified cells instead of re-simulating them.
//! `--no-cache` disables the cache for one invocation; editing a workload,
//! a config or the simulator invalidates the affected cells automatically
//! (see DESIGN.md §9).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dmdc::core::cache::{default_cache_dir, default_fingerprint, CellCache, CheckpointStore};
use dmdc::core::distrib::{self, DistribOptions, PlanDescriptor};
use dmdc::core::experiments::{self, PolicyKind};
use dmdc::core::faults::{self, FaultPlan};
use dmdc::core::fuzz::{self, FuzzOptions};
use dmdc::core::journal::{default_runs_dir, RunJournal};
use dmdc::core::recovery;
use dmdc::core::report::{fmt, OutputFormat, Report, Table};
use dmdc::core::runner::{self, Engine, RunSpec};
use dmdc::core::service::{self, http, jobs, json, ServeOptions};
use dmdc::isa::{Assembler, Emulator};
use dmdc::ooo::{run_multicore, CoreConfig, MultiCoreOptions, SampleSpec, SimOptions, Simulator};
use dmdc::workloads::{full_suite, Scale, SyntheticKernel, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `dmdc help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print!("{}", usage());
            Ok(())
        }
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("run") => cmd_run(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        Some("experiment") => cmd_experiment(&args[1..]),
        Some("asm") => cmd_asm(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn usage() -> String {
    "dmdc — DMDC (MICRO 2006) reproduction driver

USAGE:
  dmdc list
  dmdc run --workload <name> --policy <name> [--config 1|2|3]
           [--scale smoke|default|large|full] [--inval-rate R] [--trace N]
           [--profile] [--sampled|--exact] [--run-id ID]
           [--inval-model injected|coherent] [--cores N] [--seed N]
  dmdc run --resume <run-id>
  dmdc suite --policy <name> [--config N] [--scale S] [--jobs N]
           [--format text|json|csv] [--no-cache] [--profile]
           [--run-id ID] [--retries N] [--cell-timeout MS]
           [--sampled|--exact] [--distrib [--workers N] [--lease-ttl MS]
           [--poison-after N] [--grace MS] [--bind ADDR]]
  dmdc experiment <id|ablations|all> [--scale S] [--jobs N]
           [--format text|json|csv] [--no-cache] [--profile]
           [--run-id ID] [--retries N] [--cell-timeout MS]
           [--sampled|--exact] [--distrib [--workers N] [--lease-ttl MS]
           [--poison-after N] [--grace MS] [--bind ADDR]]
  dmdc worker --connect <addr> [--id NAME] [--inject-faults SPEC]
  dmdc asm <file.s>
  dmdc fuzz [--seed N] [--budget N] [--policy <name>] [--config N]
           [--out DIR] [--threads N]
  dmdc fuzz --replay <file.repro>
  dmdc serve [--addr 127.0.0.1:8181] [--state-dir DIR] [--quota N]
           [--paused] [--jobs N]
  dmdc submit [--addr A] --workload <name> --policy <name> [--config N]
           [--scale S] [--inval-rate R] [--sampled] [--priority 0..255]
           [--client NAME] [--wait [--max-wait SECS]]
  dmdc submit [--addr A] --experiment <id> [--scale S] [--priority P]
           [--client NAME] [--wait [--max-wait SECS]]
  dmdc status [--addr A] [--job <id>]
  dmdc metrics [--addr A]

`dmdc run --inval-model coherent` races N copies (--cores, default 2) of
the workload on shared memory behind MESI-coherent private L1s: the
invalidations the policy sees are the other cores' write misses, not the
Bernoulli injector (--inval-rate, the `injected` default that all
experiments and golden outputs use). Coherent mode needs a
coherence-capable policy (baseline-coherent or dmdc-coherent), is
exact-only, and --seed varies the deterministic core interleaving.

`dmdc fuzz` tortures the policies with seeded random kernels under the
invariant auditor (differential against the in-order emulator). A run is
fully determined by --seed. On failure the kernel is delta-debugged to a
minimal reproducer written to <out>/<seed>.repro (default
target/dmdc-fuzz/), which --replay re-executes exactly. --policy may be
repeated or comma-separated; the default set covers each enforcement
mechanism (baseline CAM, YLA filter, DMDC global/local, checking queue).
--threads N (2..=8) switches to multi-core torture: N kernels race on
the shared fuzz region under the coherence auditor, failures cover
coherence violations and run-to-run divergence too, the shrinker reduces
every thread's stream, and the default policies narrow to the two
coherent builds.

`dmdc list` enumerates the experiment registry (fig2..fig5,
table2..table6, multicore, the ablations). `all` runs every registry
entry in order; `ablations` runs the five ablation studies.

Worker count for suite/experiment: --jobs N, else the DMDC_JOBS
environment variable, else the machine's available parallelism. Output
is byte-identical at any job count.

suite/experiment cache verified cells under target/dmdc-cache/ keyed on
the workload bytes, the run parameters and the simulator fingerprint;
warm reruns replay instead of re-simulating. --no-cache opts out.

Sampling: --scale full (paper-scale, only tractable sampled) defaults to
SMARTS-style sampled simulation — functional fast-forward with cache and
branch-predictor warming, periodic checkpoints, short detailed windows,
population estimates with 95% confidence intervals (reported as
`value ±ci` in every emitter). --sampled opts any scale in; --exact is
the escape hatch forcing full detailed simulation at any scale. Sampled
and exact runs never share cache or journal entries, and a sampled
run with --run-id checkpoints windows so `dmdc run --resume` continues
mid-cell after a crash.

`dmdc serve` runs the registry as a long-lived HTTP/JSON daemon: clients
POST jobs (one cell or a whole experiment), poll their status, and fetch
the finished report — the same documents `--format json` prints. Jobs
queue by --priority (higher first, FIFO within a priority); identical
in-flight submissions coalesce onto one job; each client may hold at
most --quota queued+running jobs (excess submissions get a structured
429). Accepted jobs and finished results persist as sealed envelopes
under --state-dir (default target/dmdc-serve/), so a killed daemon
restarts with its unfinished queue intact and reproduces the same
results. SIGTERM (or POST /shutdown) drains the queue gracefully.
`dmdc submit/status/metrics` are the matching client commands; they
read --addr or the DMDC_ADDR environment variable (default
127.0.0.1:8181). `submit --wait` polls until the result is ready and
prints it.

--profile reports a per-stage host-time breakdown, the event-horizon
loop's skipped-cycle counters, the cell-cache hit/miss/integrity totals,
journal replay counters and the recovery ledger (for suite/experiment:
aggregated over all runs, printed to stderr so stdout stays
byte-identical).

Distributed execution: `--distrib` shards a suite or experiment across a
lease-based worker fleet. The coordinator publishes the cell list as
durable sealed lease records, spawns --workers local `dmdc worker`
processes (0 with external workers attaching at the printed --bind
address), and workers claim leases over HTTP, execute cells through the
ordinary engine, publish into the shared content-addressed cache and
heartbeat. A lease not heartbeated within --lease-ttl is reclaimed and
re-issued with exponential backoff; a cell that killed --poison-after
distinct workers is quarantined like any other cell failure. When the
fleet goes quiet for --grace (default 2x the TTL) the coordinator
degrades to local serial execution, so the run terminates even with
every worker lost. The final report is assembled from the store in spec
order and is byte-identical to the single-process run. --inject-faults
gains distributed keys, forwarded to spawned workers:
'worker-kill-after=N' (abort after N cells), 'drop-heartbeats=1',
'stale-claim=MS' (sit on the first lease past its TTL), and
'partial-upload=N' (truncate every Nth store write).

Fault tolerance: each cell runs under panic isolation; a panicking or
timed-out cell (--cell-timeout, wall-clock milliseconds per cell) is
retried --retries times (default 1) with bounded backoff, then
quarantined as a structured failure in the report (nonzero exit, partial
tables). --run-id ID checkpoints completed cells to
target/dmdc-runs/ID/journal; after a crash, `dmdc run --resume ID`
replays the finished cells and re-runs only the missing ones, producing
byte-identical output. --inject-faults SPEC (e.g.
'seed=1,panic=2,hang=3,hang-ms=200,corrupt=2,truncate=2,worker-panic=1,
kill-after=4') deterministically injects faults to exercise these paths.
"
    .to_string()
}

/// Parses `--key value` pairs; a `--flag` followed by another flag (or by
/// nothing) is boolean and stored as `"true"`. Returns an error for stray
/// non-flag arguments.
fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut flags = std::collections::HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{a}`"))?;
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(),
        };
        flags.insert(key.to_string(), value);
    }
    Ok(flags)
}

fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    PolicyKind::parse_token(name)
}

fn parse_config(flags: &std::collections::HashMap<String, String>) -> Result<CoreConfig, String> {
    match flags.get("config").map(String::as_str).unwrap_or("2") {
        "1" => Ok(CoreConfig::config1()),
        "2" => Ok(CoreConfig::config2()),
        "3" => Ok(CoreConfig::config3()),
        other => Err(format!("unknown config `{other}` (1, 2 or 3)")),
    }
}

/// Applies `--profile` as the process-wide profiling switch for the runner.
fn apply_profile(flags: &std::collections::HashMap<String, String>) {
    if flags.contains_key("profile") {
        runner::set_profile(true);
    }
}

/// Prints the accumulated profile totals — plus the cell cache's
/// hit/miss/integrity counters, the journal's replay counters and the
/// recovery ledger when installed — to stderr, keeping stdout
/// byte-identical with and without `--profile`.
fn report_profile() {
    if runner::profile_enabled() {
        eprint!("{}", runner::take_profile_totals().render());
        if let Some(cache) = runner::global_cell_cache() {
            let c = cache.counters();
            eprintln!(
                "[profile] cell cache: {} hits, {} misses, {} stored, {} corrupt, {} quarantined ({})",
                c.hits,
                c.misses,
                c.stores,
                c.corrupt,
                c.quarantined,
                cache.dir().display(),
            );
        }
        if let Some(store) = runner::global_checkpoint_store() {
            let c = store.counters();
            eprintln!(
                "[profile] checkpoint store: {} hits, {} misses, {} stored, {} corrupt, {} quarantined ({})",
                c.hits,
                c.misses,
                c.stores,
                c.corrupt,
                c.quarantined,
                store.dir().display(),
            );
        }
        if let Some(journal) = runner::global_journal() {
            let c = journal.counters();
            eprintln!(
                "[profile] journal '{}': {} replayed, {} recorded, {} dropped ({})",
                journal.run_id(),
                c.replayed,
                c.recorded,
                c.dropped,
                journal.run_dir().display(),
            );
        }
        eprintln!("{}", recovery::render(&recovery::counters()));
    }
}

/// Applies `--retries`, `--cell-timeout` (milliseconds) and
/// `--inject-faults` as process-wide recovery settings for the runner.
fn apply_recovery(flags: &std::collections::HashMap<String, String>) -> Result<(), String> {
    if let Some(n) = flags.get("retries") {
        let n: usize = n
            .parse()
            .map_err(|_| "bad --retries (want a non-negative integer)")?;
        runner::set_default_retries(n);
    }
    if let Some(ms) = flags.get("cell-timeout") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| "bad --cell-timeout (want milliseconds)")?;
        if ms == 0 {
            return Err("--cell-timeout must be at least 1 millisecond".to_string());
        }
        runner::set_default_cell_timeout(Some(Duration::from_millis(ms)));
    }
    if let Some(spec) = flags.get("inject-faults") {
        faults::set_fault_plan(Some(FaultPlan::parse(spec)?));
    }
    Ok(())
}

/// Starts crash-safe journaling under `target/dmdc-runs/<run-id>/` when
/// `--run-id` was given. No-op if a journal is already installed — a
/// `--resume` dispatch re-enters here with the recorded argv, and the
/// resumed journal must stay in place.
fn apply_journal(
    command: &str,
    args: &[String],
    flags: &std::collections::HashMap<String, String>,
) -> Result<(), String> {
    let Some(run_id) = flags.get("run-id") else {
        return Ok(());
    };
    if runner::global_journal().is_some() {
        return Ok(());
    }
    let mut argv = vec![command.to_string()];
    argv.extend(args.iter().cloned());
    let journal = RunJournal::create(&default_runs_dir(), run_id, &default_fingerprint(), &argv)?;
    runner::set_global_journal(Some(Arc::new(journal)));
    Ok(())
}

/// `dmdc run --resume <run-id>`: reopen the interrupted run's journal,
/// verify the fingerprint, and re-dispatch its recorded command line.
/// Completed cells replay from the journal; only missing cells simulate.
/// Any recorded `--inject-faults` plan is dropped — the fault plan that
/// killed the run must not kill the resume.
fn cmd_resume(run_id: &str) -> Result<(), String> {
    let (journal, argv) = RunJournal::resume(&default_runs_dir(), run_id, &default_fingerprint())?;
    eprintln!(
        "resuming run '{run_id}': {} completed cells on record",
        journal.preexisting_len()
    );
    runner::set_global_journal(Some(Arc::new(journal)));
    let mut replay = Vec::with_capacity(argv.len());
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        if a == "--inject-faults" {
            if let Some(v) = it.next() {
                if v.starts_with("--") {
                    replay.push(v); // boolean form: keep the next flag
                }
            }
            continue;
        }
        replay.push(a);
    }
    dispatch(&replay)
}

/// Installs the persistent cell cache and the checkpoint store (both
/// under `target/dmdc-cache/`) unless `--no-cache` was given.
fn apply_cache(flags: &std::collections::HashMap<String, String>) {
    if !flags.contains_key("no-cache") {
        runner::set_global_cell_cache(Some(Arc::new(CellCache::new(default_cache_dir()))));
        runner::set_global_checkpoint_store(Some(Arc::new(CheckpointStore::new(
            default_cache_dir(),
        ))));
    }
}

/// Parses `--format` (text, json or csv; text when absent).
fn parse_format(flags: &std::collections::HashMap<String, String>) -> Result<OutputFormat, String> {
    flags
        .get("format")
        .map(String::as_str)
        .unwrap_or("text")
        .parse()
}

/// Applies `--jobs N` as the process-wide worker count for the runner.
fn apply_jobs(flags: &std::collections::HashMap<String, String>) -> Result<(), String> {
    if let Some(n) = flags.get("jobs") {
        let n: usize = n
            .parse()
            .map_err(|_| "bad --jobs (want a positive integer)")?;
        if n == 0 {
            return Err("--jobs must be at least 1".to_string());
        }
        runner::set_default_jobs(n);
    }
    Ok(())
}

/// Parses `--distrib` and its companions into [`DistribOptions`]; `None`
/// when `--distrib` was not given. The `--inject-faults` spec is
/// forwarded verbatim to spawned workers so the chaos keys fire in the
/// processes they describe.
fn parse_distrib(
    flags: &std::collections::HashMap<String, String>,
) -> Result<Option<DistribOptions>, String> {
    if !flags.contains_key("distrib") {
        return Ok(None);
    }
    let mut opts = DistribOptions {
        workers: match flags.get("workers") {
            Some(n) => n
                .parse()
                .map_err(|_| "bad --workers (want a non-negative integer)")?,
            None => 2,
        },
        ..DistribOptions::default()
    };
    if let Some(ms) = flags.get("lease-ttl") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| "bad --lease-ttl (want milliseconds)")?;
        if ms < 50 {
            return Err("--lease-ttl must be at least 50 milliseconds".to_string());
        }
        opts.lease_ttl = Duration::from_millis(ms);
    }
    if let Some(n) = flags.get("poison-after") {
        opts.poison_after = n
            .parse()
            .map_err(|_| "bad --poison-after (want a positive integer)")?;
        if opts.poison_after == 0 {
            return Err("--poison-after must be at least 1".to_string());
        }
    }
    opts.grace = match flags.get("grace") {
        Some(ms) => {
            Duration::from_millis(ms.parse().map_err(|_| "bad --grace (want milliseconds)")?)
        }
        None => opts.lease_ttl * 2,
    };
    if let Some(bind) = flags.get("bind") {
        opts.bind = bind.clone();
    }
    if let Some(id) = flags.get("run-id") {
        opts.run_id = id.clone();
    }
    opts.worker_faults = flags.get("inject-faults").cloned();
    Ok(Some(opts))
}

/// `dmdc worker --connect <addr>`: join a coordinator's fleet and run
/// cells until it reports the run complete. `--inject-faults` arms the
/// distributed chaos keys in this process.
fn cmd_worker(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let addr = flags
        .get("connect")
        .ok_or("--connect <addr> is required")?
        .clone();
    let id = flags
        .get("id")
        .cloned()
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    apply_recovery(&flags)?;
    distrib::run_worker(&addr, &id)
}

fn parse_scale(flags: &std::collections::HashMap<String, String>) -> Result<Scale, String> {
    match flags.get("scale").map(String::as_str).unwrap_or("default") {
        "smoke" => Ok(Scale::Smoke),
        "default" => Ok(Scale::Default),
        "large" => Ok(Scale::Large),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale `{other}`")),
    }
}

/// Resolves the sampling mode from `--sampled` / `--exact` and the scale:
/// paper-scale (`--scale full`) runs sample by default because exact
/// simulation at that size is intractable; every other scale stays exact
/// unless `--sampled` asks otherwise. Returns the spec it installed as
/// the process-wide default for the runner.
fn apply_sampling(
    flags: &std::collections::HashMap<String, String>,
    scale: Scale,
) -> Result<SampleSpec, String> {
    if flags.contains_key("exact") && flags.contains_key("sampled") {
        return Err("--exact and --sampled are mutually exclusive".to_string());
    }
    let on = if flags.contains_key("exact") {
        false
    } else {
        flags.contains_key("sampled") || scale == Scale::Full
    };
    let spec = if on {
        SampleSpec::standard()
    } else {
        SampleSpec::EXACT
    };
    runner::set_default_sampling(spec);
    Ok(spec)
}

fn find_workload(name: &str, scale: Scale) -> Result<Workload, String> {
    if name == "synthetic" {
        return Ok(SyntheticKernel::new(20_000 * scale.factor())
            .branch_noise(true)
            .build());
    }
    full_suite(scale)
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| format!("unknown workload `{name}` (see `dmdc list`)"))
}

fn cmd_list() {
    println!("workloads (INT): hash sort list crc bitcnt strmatch histo");
    println!("workloads (FP):  mm saxpy stencil fir nbody mc tri");
    println!("                 synthetic (parameterizable kernel)");
    println!();
    println!("policies: baseline baseline-coherent yla-<N> bloom-<N>");
    println!("          dmdc-global dmdc-local dmdc-coherent dmdc-no-safe-loads queue-<N>");
    println!();
    println!("configs:  1 (ROB 128)  2 (ROB 256, default)  3 (ROB 512)");
    println!("scales:   smoke default large full (full samples by default)");
    println!();
    println!("experiments (dmdc experiment <id> [--scale S] [--format text|json|csv]):");
    for exp in experiments::registry() {
        // The matrix shape is scale-independent: scale changes iteration
        // counts inside each workload, not the workload × variant cross.
        let cells = exp.plan(Scale::Smoke).cell_count();
        println!(
            "  {:<20} {:<32} {:>4} cells/scale",
            exp.id(),
            exp.paper_ref(),
            cells
        );
    }
    println!("  groups: ablations (the five ablation studies), all (every entry above)");
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if let Some(run_id) = flags.get("resume") {
        return cmd_resume(run_id);
    }
    let workload_name = flags.get("workload").ok_or("--workload is required")?;
    let policy = parse_policy(flags.get("policy").ok_or("--policy is required")?)?;
    let config = parse_config(&flags)?;
    let scale = parse_scale(&flags)?;
    let spec = apply_sampling(&flags, scale)?;
    let workload = find_workload(workload_name, scale)?;

    let mut opts = SimOptions::default();
    if let Some(rate) = flags.get("inval-rate") {
        opts.inval_per_kcycle = rate.parse().map_err(|_| "bad --inval-rate")?;
    }
    if let Some(n) = flags.get("trace") {
        opts.trace_capacity = n.parse().map_err(|_| "bad --trace")?;
    }
    if let Some(n) = flags.get("max-commits") {
        opts.max_commits = Some(n.parse().map_err(|_| "bad --max-commits")?);
    }
    opts.profile = flags.contains_key("profile");

    // `--inval-model` picks where invalidations come from: `injected`
    // (the default — the single-core Bernoulli injector, byte-identical
    // to every previous release) or `coherent` (a real N-core MESI run
    // where the *other cores'* write misses deliver them).
    match flags.get("inval-model").map(String::as_str) {
        None | Some("injected") => {
            if flags.contains_key("cores") {
                return Err("--cores needs --inval-model coherent".to_string());
            }
        }
        Some("coherent") => {
            if spec.enabled() {
                return Err("--inval-model coherent is exact-only (drop --sampled)".to_string());
            }
            if opts.inval_per_kcycle != 0.0 {
                return Err(
                    "--inval-rate is the injected model; it cannot combine with \
                     --inval-model coherent"
                        .to_string(),
                );
            }
            if opts.trace_capacity > 0 || opts.max_commits.is_some() {
                return Err(
                    "--trace/--max-commits are single-core flags (drop --inval-model coherent)"
                        .to_string(),
                );
            }
            return cmd_run_coherent(&workload, &policy, &config, &flags);
        }
        Some(other) => {
            return Err(format!(
                "unknown --inval-model `{other}` (injected or coherent)"
            ));
        }
    }

    if spec.enabled() {
        if opts.trace_capacity > 0 {
            return Err("--trace needs an exact run (add --exact)".to_string());
        }
        if opts.max_commits.is_some() {
            return Err("--max-commits needs an exact run (add --exact)".to_string());
        }
        opts.sampling = spec;
        if opts.profile {
            runner::set_profile(true);
        }
        // Single sampled runs bypass the engine (no cell cache lookups),
        // but the sampling driver itself consults the checkpoint store —
        // installing it makes repeat runs skip the fast-forward.
        apply_cache(&flags);
        apply_recovery(&flags)?;
        apply_journal("run", args, &flags)?;
        let cell = experiments::run_workload(&workload, &config, &policy, opts);
        print_run_stats(&workload, &policy, &config, &cell.stats);
        report_profile();
        return Ok(());
    }

    // Drive the simulator directly so the trace is accessible afterwards.
    let mut sim = Simulator::new(&workload.program, config.clone(), policy.build(&config));
    let result = sim.run(opts).map_err(|e| e.to_string())?;
    if opts.trace_capacity > 0 {
        println!("{}", sim.trace().render());
    }

    let s = &result.stats;
    print_run_stats(&workload, &policy, &config, s);
    if let Some(profile) = &result.profile {
        print!("{}", profile.render(s));
    }
    Ok(())
}

/// `dmdc run --inval-model coherent`: N copies of the workload race on
/// shared memory behind MESI-coherent private L1s, so the invalidations
/// reaching the policy are organic cross-core write misses instead of
/// Bernoulli noise.
fn cmd_run_coherent(
    workload: &Workload,
    policy: &PolicyKind,
    config: &CoreConfig,
    flags: &std::collections::HashMap<String, String>,
) -> Result<(), String> {
    if !matches!(
        policy,
        PolicyKind::BaselineCoherent | PolicyKind::DmdcCoherent
    ) {
        return Err(format!(
            "policy {} is built without coherence support; use baseline-coherent \
             or dmdc-coherent with --inval-model coherent",
            policy.token()
        ));
    }
    let cores: usize = match flags.get("cores") {
        Some(n) => n.parse().map_err(|_| "bad --cores")?,
        None => 2,
    };
    if !(2..=8).contains(&cores) {
        return Err("--cores must be 2..=8".to_string());
    }
    let seed: u64 = match flags.get("seed") {
        Some(n) => n.parse().map_err(|_| "bad --seed")?,
        None => 1,
    };
    let programs: Vec<&dmdc::isa::Program> = (0..cores).map(|_| &workload.program).collect();
    let policies = (0..cores).map(|_| policy.build(config)).collect();
    let mc_opts = MultiCoreOptions {
        seed,
        audit: true,
        ..MultiCoreOptions::default()
    };
    let r = run_multicore(&programs, config, policies, &mc_opts).map_err(|e| e.to_string())?;
    if !r.coherence_violations.is_empty() {
        return Err(format!(
            "coherence violations:\n{}",
            r.coherence_violations.join("\n")
        ));
    }
    println!(
        "workload {} under {policy:?} on {}, {cores} cores (coherent invalidations, seed {seed})",
        workload.name, config.name
    );
    println!("  driver cycles {:>12}", r.cycles);
    println!(
        "  bus           {:>12}  reads / {} readX / {} upgrades / {} writebacks",
        r.bus.bus_reads, r.bus.bus_read_x, r.bus.bus_upgrades, r.bus.writebacks
    );
    println!(
        "  invals        {:>12}  delivered ({:.1} / 1k cycles)",
        r.bus.invals_sent,
        r.invals_per_kcycle()
    );
    println!(
        "  L2            {:>12}  hits / {} misses",
        r.shared_l2.hits, r.shared_l2.misses
    );
    println!("  mem checksum  {:#018x}", r.mem_checksum);
    for (i, core) in r.cores.iter().enumerate() {
        let s = &core.result.stats;
        println!(
            "  core {i}: {} cycles, {} committed (IPC {:.2}), {} replays \
             ({} coherence), {} invalidations",
            s.cycles,
            s.committed,
            s.ipc(),
            s.replay_squashes,
            s.policy.replays.coherence,
            s.policy.invalidations
        );
        if let Some(audit) = &core.result.audit {
            if !audit.is_clean() {
                return Err(format!("core {i} audit:\n{}", audit.render()));
            }
        }
    }
    Ok(())
}

/// The shared `dmdc run` stat block. Sampled runs append the sampling
/// summary (windows, population, estimates with 95% CIs); exact output is
/// byte-identical to what this command always printed.
fn print_run_stats(
    workload: &Workload,
    policy: &PolicyKind,
    config: &CoreConfig,
    s: &dmdc::ooo::SimStats,
) {
    println!(
        "workload {} under {policy:?} on {}",
        workload.name, config.name
    );
    println!("  cycles        {:>12}", s.cycles);
    println!("  committed     {:>12}  (IPC {:.2})", s.committed, s.ipc());
    println!("  loads/stores  {:>12}  / {}", s.loads, s.stores);
    println!("  mispredicts   {:>12}", s.mispredicts);
    println!(
        "  replays       {:>12}  ({:.1} false / 1M)",
        s.replay_squashes,
        s.per_million(s.policy.replays.false_total())
    );
    println!(
        "  safe stores   {:>12}",
        fmt::pct(s.policy.store_filter_rate())
    );
    println!(
        "  safe loads    {:>12}",
        fmt::pct(s.policy.safe_load_rate())
    );
    println!("  LQ searches   {:>12}", s.energy.lq_cam_searches);
    println!("  L1D miss rate {:>12}", fmt::pct(s.l1d.miss_rate()));
    if s.policy.invalidations > 0 {
        println!("  invalidations {:>12}", s.policy.invalidations);
    }
    if s.is_sampled() {
        let sp = &s.sampling;
        println!(
            "  sampled       {:>12}  windows over {} retired insts ({} measured)",
            sp.windows, sp.population, sp.sampled_committed
        );
        println!(
            "  estimates     IPC {}, replays/1M {}, safe stores {}, safe loads {}",
            fmt::f2_ci(sp.ipc_mean(), sp.ipc_ci()),
            fmt::f1_ci(sp.replays_per_m_mean(), sp.replays_per_m_ci()),
            fmt::pct_ci(sp.filter_rate_mean(), sp.filter_rate_ci()),
            fmt::pct_ci(sp.safe_load_rate_mean(), sp.safe_load_rate_ci()),
        );
    }
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let policy = parse_policy(
        flags
            .get("policy")
            .map(String::as_str)
            .unwrap_or("dmdc-global"),
    )?;
    let config = parse_config(&flags)?;
    let scale = parse_scale(&flags)?;
    let format = parse_format(&flags)?;
    apply_jobs(&flags)?;
    apply_profile(&flags);
    apply_cache(&flags);
    apply_recovery(&flags)?;
    let sampling = apply_sampling(&flags, scale)?;
    apply_journal("suite", args, &flags)?;
    let mut t = Table::new(format!("suite under {policy:?} on {}", config.name));
    t.headers([
        "workload",
        "group",
        "IPC",
        "replays/1M",
        "safe stores",
        "safe loads",
    ]);
    let suite = full_suite(scale);
    let (runs, failures) = match parse_distrib(&flags)? {
        Some(dopts) => {
            // The worker fleet rebuilds this exact matrix from the
            // descriptor; the assembled cells feed the same table code.
            let config_num: u8 = flags
                .get("config")
                .map(String::as_str)
                .unwrap_or("2")
                .parse()
                .expect("validated by parse_config");
            let desc = PlanDescriptor::Suite {
                policy: policy.clone(),
                config: config_num,
                scale,
                sampled: sampling.enabled(),
            };
            distrib::execute_plan_distributed(&desc, &dopts)?
        }
        None => {
            let specs: Vec<RunSpec> = (0..suite.len())
                .map(|i| RunSpec::new(i, &config, policy.clone()))
                .collect();
            let engine = Engine::new(&suite);
            engine.run_all_recovered(&specs)
        }
    };
    for (w, r) in suite.iter().zip(&runs) {
        let Some(r) = r else { continue };
        let s = &r.stats;
        // Sampled cells show each estimate with its 95% half-width; exact
        // cells render byte-identically to before.
        let row = if s.is_sampled() {
            let sp = &s.sampling;
            [
                fmt::f2_ci(s.ipc(), sp.ipc_ci()),
                fmt::f1_ci(
                    s.per_million(s.policy.replays.total()),
                    sp.replays_per_m_ci(),
                ),
                fmt::pct_ci(s.policy.store_filter_rate(), sp.filter_rate_ci()),
                fmt::pct_ci(s.policy.safe_load_rate(), sp.safe_load_rate_ci()),
            ]
        } else {
            [
                fmt::f2(s.ipc()),
                fmt::f1(s.per_million(s.policy.replays.total())),
                fmt::pct(s.policy.store_filter_rate()),
                fmt::pct(s.policy.safe_load_rate()),
            ]
        };
        let [ipc, replays, stores, loads] = row;
        t.row([
            w.name.to_string(),
            w.group.to_string(),
            ipc,
            replays,
            stores,
            loads,
        ]);
    }
    let quarantined = failures.len();
    let mut report = Report::single("suite", t);
    for f in failures {
        report.push_failure(f);
    }
    print!("{}", report.emit(format));
    report_profile();
    if quarantined > 0 {
        return Err(format!(
            "{quarantined} cell(s) quarantined; the report is partial"
        ));
    }
    Ok(())
}

fn cmd_experiment(args: &[String]) -> Result<(), String> {
    let which = args
        .first()
        .ok_or("which experiment? (see `dmdc list`: fig2..fig5, table2..table6, ablations, all)")?;
    let flags = parse_flags(&args[1..])?;
    let scale = parse_scale(&flags)?;
    let format = parse_format(&flags)?;
    apply_jobs(&flags)?;
    apply_profile(&flags);
    apply_cache(&flags);
    apply_recovery(&flags)?;
    let sampling = apply_sampling(&flags, scale)?;
    apply_journal("experiment", args, &flags)?;
    let distrib_opts = parse_distrib(&flags)?;
    let ids: Vec<&str> = match which.as_str() {
        "all" => experiments::registry().iter().map(|e| e.id()).collect(),
        "ablations" => experiments::ABLATION_IDS.to_vec(),
        one => vec![one],
    };
    let mut quarantined = 0;
    for id in ids {
        let exp = experiments::find_experiment(id)
            .ok_or_else(|| format!("unknown experiment `{id}` (see `dmdc list`)"))?;
        let report = match &distrib_opts {
            Some(dopts) => {
                distrib::run_experiment_distributed(exp, scale, sampling.enabled(), dopts)?
            }
            None => experiments::run_experiment(exp, scale),
        };
        quarantined += report.failures().len();
        print!("{}", report.emit(format));
    }
    report_profile();
    if quarantined > 0 {
        return Err(format!(
            "{quarantined} cell(s) quarantined; the report is partial"
        ));
    }
    Ok(())
}

/// `dmdc fuzz`: parses its own flags (unlike [`parse_flags`], `--policy`
/// may repeat), then either replays a repro file or runs the fuzz loop.
/// Exits nonzero whenever a failure is (still) reproducible, so CI can
/// gate on it and upload the repro artifact.
fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    let mut opts = FuzzOptions::new(1);
    let mut policies: Vec<PolicyKind> = Vec::new();
    let mut replay_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{a}`"))?;
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(),
        };
        match key {
            "seed" => opts.seed = value.parse().map_err(|_| "bad --seed")?,
            "budget" => opts.budget = value.parse().map_err(|_| "bad --budget")?,
            "policy" => {
                for tok in value.split(',') {
                    policies.push(parse_policy(tok.trim())?);
                }
            }
            "config" => match value.as_str() {
                "1" | "2" | "3" => opts.config = value,
                other => return Err(format!("unknown config `{other}` (1, 2 or 3)")),
            },
            "out" => opts.out_dir = std::path::PathBuf::from(value),
            "replay" => replay_path = Some(value),
            "threads" => {
                let n: usize = value.parse().map_err(|_| "bad --threads")?;
                if !(1..=8).contains(&n) {
                    return Err("--threads must be 1..=8".to_string());
                }
                opts.threads = n;
            }
            other => return Err(format!("unknown fuzz flag `--{other}`")),
        }
    }

    if let Some(path) = replay_path {
        let (repro, failure) = fuzz::replay_file(std::path::Path::new(&path))?;
        let threads_note = if repro.extra.is_empty() {
            String::new()
        } else {
            format!(" x {} threads", 1 + repro.extra.len())
        };
        println!(
            "replaying {path}: {} ops x {} iters{threads_note}, policy {}, config {}",
            repro.kernel.ops.len(),
            repro.kernel.iters,
            repro.policy,
            repro.config
        );
        return match failure {
            Some(f) => {
                println!("reproduced [{}]:\n{}", f.kind, f.detail);
                Err(format!("repro still fails with `{}`", f.kind))
            }
            None => {
                println!("clean: the recorded `{}` no longer reproduces", repro.kind);
                Ok(())
            }
        };
    }

    if !policies.is_empty() {
        opts.policies = policies;
    } else if opts.threads > 1 {
        // Multi-core torture delivers real invalidations, so the default
        // policy set narrows to the two coherence-capable builds.
        opts.policies = FuzzOptions::mt_policies();
    }
    let outcome = fuzz::fuzz(&opts)?;
    match outcome.failure {
        Some(repro) => {
            println!("{}", repro.render());
            if let Some(p) = &outcome.repro_path {
                println!("repro written to {}", p.display());
            }
            Err(format!(
                "seed {} failed with `{}` after {} cases (kernel {} shrunk to {} ops)",
                opts.seed,
                repro.kind,
                outcome.cases,
                repro.index,
                repro.kernel.ops.len()
            ))
        }
        None => {
            let threads_note = if opts.threads > 1 {
                format!(" x {} threads", opts.threads)
            } else {
                String::new()
            };
            println!(
                "fuzz: seed {}, {} cases clean ({} kernels x {} policies{threads_note})",
                opts.seed,
                outcome.cases,
                opts.budget,
                opts.policies.len()
            );
            Ok(())
        }
    }
}

/// `dmdc serve`: run the long-lived simulation daemon (see the usage
/// text and `dmdc::core::service` for the wire contract).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    apply_jobs(&flags)?;
    apply_recovery(&flags)?;
    let mut opts = ServeOptions::default();
    if let Some(addr) = flags.get("addr") {
        opts.addr = addr.clone();
    }
    if let Some(dir) = flags.get("state-dir") {
        opts.state_dir = std::path::PathBuf::from(dir);
    }
    if let Some(quota) = flags.get("quota") {
        opts.quota = quota
            .parse()
            .map_err(|_| "bad --quota (want a positive integer)")?;
        if opts.quota == 0 {
            return Err("--quota must be at least 1".to_string());
        }
    }
    opts.paused = flags.contains_key("paused");
    service::serve(&opts)
}

/// The daemon address for the client subcommands: `--addr`, else the
/// `DMDC_ADDR` environment variable, else the default port.
fn server_addr(flags: &std::collections::HashMap<String, String>) -> String {
    flags
        .get("addr")
        .cloned()
        .or_else(|| std::env::var("DMDC_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:8181".to_string())
}

/// `dmdc submit`: build the submission document from the same flags
/// `dmdc run`/`experiment` take, POST it, print the server's reply (and
/// with `--wait`, poll until the result is ready and print that).
fn cmd_submit(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let addr = server_addr(&flags);
    let scale = parse_scale(&flags)?;
    let mut body = if let Some(id) = flags.get("experiment") {
        format!(
            "{{\"kind\": \"experiment\", \"id\": \"{}\", \"scale\": \"{}\"",
            json::escape(id),
            jobs::scale_token(scale)
        )
    } else {
        let workload = flags
            .get("workload")
            .ok_or("--workload or --experiment is required")?;
        let policy = parse_policy(flags.get("policy").ok_or("--policy is required")?)?;
        let config = flags.get("config").map(String::as_str).unwrap_or("2");
        if !matches!(config, "1" | "2" | "3") {
            return Err(format!("unknown config `{config}` (1, 2 or 3)"));
        }
        let inval_rate: f64 = match flags.get("inval-rate") {
            None => 0.0,
            Some(r) => r.parse().map_err(|_| "bad --inval-rate")?,
        };
        format!(
            "{{\"kind\": \"cell\", \"workload\": \"{}\", \"policy\": \"{}\", \
             \"config\": {config}, \"scale\": \"{}\", \"inval_rate\": {inval_rate}, \
             \"sampled\": {}",
            json::escape(workload),
            json::escape(&policy.token()),
            jobs::scale_token(scale),
            flags.contains_key("sampled")
        )
    };
    if let Some(priority) = flags.get("priority") {
        let p: u16 = priority.parse().map_err(|_| "bad --priority (0..=255)")?;
        if p > 255 {
            return Err("--priority must be 0..=255".to_string());
        }
        body.push_str(&format!(", \"priority\": {p}"));
    }
    if let Some(client) = flags.get("client") {
        body.push_str(&format!(", \"client\": \"{}\"", json::escape(client)));
    }
    body.push('}');

    // With `--wait` the whole interaction runs under one deadline
    // (`--max-wait`, seconds): connection refused/reset retries with
    // jittered exponential backoff instead of failing on the first
    // blip, and a job that is still pending at the deadline ends with a
    // clear terminal error rather than polling forever.
    let wait = flags.contains_key("wait");
    let max_wait = Duration::from_secs(match flags.get("max-wait") {
        Some(s) => {
            if !wait {
                return Err("--max-wait needs --wait".to_string());
            }
            let s: u64 = s.parse().map_err(|_| "bad --max-wait (want seconds)")?;
            if s == 0 {
                return Err("--max-wait must be at least 1 second".to_string());
            }
            s
        }
        None => 600,
    });
    let deadline = std::time::Instant::now() + max_wait;
    let remaining = |label: &str| -> Result<Duration, String> {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        if left.is_zero() {
            return Err(format!("{label} after --max-wait {max_wait:?}; giving up"));
        }
        Ok(left)
    };

    let (status, reply) = if wait {
        http::request_with_retry(&addr, "POST", "/jobs", Some(&body), max_wait)?
    } else {
        http::request(&addr, "POST", "/jobs", Some(&body))?
    };
    if status != 200 {
        return Err(format!("server {addr} returned {status}: {}", reply.trim()));
    }
    print!("{reply}");
    if !wait {
        return Ok(());
    }
    let doc = json::parse(&reply)?;
    let id = doc
        .get("id")
        .and_then(|v| v.as_str())
        .ok_or("server reply has no job id")?
        .to_string();
    loop {
        let left = remaining(&format!("job {id} still pending"))?;
        let (status, payload) =
            http::request_with_retry(&addr, "GET", &format!("/jobs/{id}/result"), None, left)?;
        match status {
            202 => std::thread::sleep(Duration::from_millis(200)),
            200 => {
                print!("{payload}");
                return Ok(());
            }
            500 => {
                print!("{payload}");
                return Err(format!("job {id} failed"));
            }
            other => {
                return Err(format!(
                    "server {addr} returned {other}: {}",
                    payload.trim()
                ))
            }
        }
    }
}

/// `dmdc status`: one job's status document (`--job`), or every job.
fn cmd_status(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let addr = server_addr(&flags);
    let path = match flags.get("job") {
        Some(id) => format!("/jobs/{id}"),
        None => "/jobs".to_string(),
    };
    let (status, reply) = http::request(&addr, "GET", &path, None)?;
    print!("{reply}");
    if status != 200 {
        return Err(format!("server {addr} returned {status}"));
    }
    Ok(())
}

/// `dmdc metrics`: the daemon's service/cache/single-flight counters.
fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let addr = server_addr(&flags);
    let (status, reply) = http::request(&addr, "GET", "/metrics", None)?;
    print!("{reply}");
    if status != 200 {
        return Err(format!("server {addr} returned {status}"));
    }
    Ok(())
}

fn cmd_asm(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("asm needs a file path")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = Assembler::new()
        .assemble_named(path, &src)
        .map_err(|e| format!("{path}:{e}"))?;
    let mut emu = Emulator::new(&program);
    let retired = emu.run(500_000_000).map_err(|e| e.to_string())?;
    println!("{path}: {retired} instructions retired");
    println!(
        "  x28 = {} ({:#x})",
        emu.int_reg(28) as i64,
        emu.int_reg(28)
    );
    println!("  f28 = {}", emu.fp_reg(28));
    println!("  state checksum = {:#018x}", emu.state_checksum());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_pairs_and_reject_strays() {
        let args: Vec<String> = ["--workload", "histo", "--config", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["workload"], "histo");
        assert_eq!(f["config"], "2");
        assert!(parse_flags(&["stray".to_string()]).is_err());
    }

    #[test]
    fn flags_parse_booleans() {
        let args: Vec<String> = ["--profile", "--jobs", "4", "--trace"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["profile"], "true");
        assert_eq!(f["jobs"], "4");
        assert_eq!(f["trace"], "true");
    }

    #[test]
    fn policies_parse() {
        assert_eq!(parse_policy("baseline").unwrap(), PolicyKind::Baseline);
        assert_eq!(parse_policy("dmdc").unwrap(), PolicyKind::DmdcGlobal);
        assert_eq!(
            parse_policy("yla-8").unwrap(),
            PolicyKind::Yla {
                regs: 8,
                line_interleaved: false
            }
        );
        assert_eq!(
            parse_policy("bloom-256").unwrap(),
            PolicyKind::Bloom { entries: 256 }
        );
        assert_eq!(
            parse_policy("queue-16").unwrap(),
            PolicyKind::CheckingQueue { entries: 16 }
        );
        assert!(parse_policy("nonsense").is_err());
    }

    #[test]
    fn workloads_resolve() {
        assert!(find_workload("histo", Scale::Smoke).is_ok());
        assert!(find_workload("synthetic", Scale::Smoke).is_ok());
        assert!(find_workload("nope", Scale::Smoke).is_err());
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&["bogus".to_string()]).is_err());
        assert!(usage().contains("dmdc fuzz"), "help covers fuzz");
        assert!(usage().contains("--replay"), "help covers replay");
    }

    fn fuzz_args(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn fuzz_flags_reject_garbage() {
        assert!(cmd_fuzz(&fuzz_args(&["--seed", "banana"])).is_err());
        assert!(cmd_fuzz(&fuzz_args(&["--budget", "-3"])).is_err());
        assert!(cmd_fuzz(&fuzz_args(&["--config", "9"])).is_err());
        assert!(cmd_fuzz(&fuzz_args(&["--policy", "nonsense"])).is_err());
        assert!(cmd_fuzz(&fuzz_args(&["--warble"])).is_err());
        assert!(cmd_fuzz(&fuzz_args(&["stray"])).is_err());
        assert!(cmd_fuzz(&fuzz_args(&["--replay", "/no/such/file.repro"])).is_err());
    }

    #[test]
    fn fuzz_small_clean_run_and_policy_lists() {
        // Two kernels, two policies via both spellings of --policy; must
        // come back clean (real policies under the auditor).
        let out = std::env::temp_dir().join("dmdc-fuzz-cli-test");
        assert!(cmd_fuzz(&fuzz_args(&[
            "--seed",
            "3",
            "--budget",
            "2",
            "--policy",
            "baseline,dmdc-global",
            "--policy",
            "dmdc-local",
            "--out",
            out.to_str().unwrap(),
        ]))
        .is_ok());
        let _ = std::fs::remove_dir_all(&out);
    }
}
