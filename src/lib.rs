//! Facade crate for the DMDC reproduction.
//!
//! Re-exports the public API of every workspace crate so downstream users
//! (and the examples and integration tests in this repository) only need a
//! single dependency.
//!
//! See the README for a tour; the paper's primary contribution lives in
//! [`core`] ([`dmdc_core`]), the out-of-order processor substrate in
//! [`ooo`] ([`dmdc_ooo`]).

pub use dmdc_core as core;
pub use dmdc_energy as energy;
pub use dmdc_isa as isa;
pub use dmdc_ooo as ooo;
pub use dmdc_types as types;
pub use dmdc_workloads as workloads;
